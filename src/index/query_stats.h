// Counters describing the work one exact-search query performed. These
// drive the pruning-power analyses in EXPERIMENTS.md and let tests assert
// behavioural properties (e.g. "MESSI performs fewer real distance
// calculations than ParIS", Section IV of the paper).
#ifndef PARISAX_INDEX_QUERY_STATS_H_
#define PARISAX_INDEX_QUERY_STATS_H_

#include <cstdint>

namespace parisax {

struct QueryStats {
  /// Lower-bound (mindist) evaluations against summaries.
  uint64_t lb_checks = 0;
  /// Series that survived lower-bound filtering.
  uint64_t candidates = 0;
  /// Full (possibly early-abandoned) real distance computations.
  uint64_t real_dist_calcs = 0;
  /// Tree nodes visited (tree-based strategies).
  uint64_t nodes_visited = 0;
  /// Leaves inspected or popped from priority queues.
  uint64_t leaves_inspected = 0;
  /// Priority queues abandoned because their minimum exceeded the BSF.
  uint64_t queue_abandons = 0;

  double total_seconds = 0.0;
  double approx_phase_seconds = 0.0;
  double filter_phase_seconds = 0.0;
  double refine_phase_seconds = 0.0;

  void MergeCounters(const QueryStats& other) {
    lb_checks += other.lb_checks;
    candidates += other.candidates;
    real_dist_calcs += other.real_dist_calcs;
    nodes_visited += other.nodes_visited;
    leaves_inspected += other.leaves_inspected;
    queue_abandons += other.queue_abandons;
  }
};

}  // namespace parisax

#endif  // PARISAX_INDEX_QUERY_STATS_H_
