// ADS+ baseline: the serial state-of-the-art index the paper compares
// against (Zoumpatianos et al., "ADS: the adaptive data series index").
//
// Build: a single thread streams the collection, computes iSAX summaries
// into the flat SAX array and bulk-loads the tree; in on-disk mode leaf
// contents are then materialized to LeafStorage.
// Exact query answering follows ADS+'s SIMS strategy: seed a BSF with the
// real distances of the query's approximate-match leaf, serially filter
// the flat SAX array with mindist, then skip-sequentially scan the raw
// file for the surviving candidates (candidates sorted by position).
#ifndef PARISAX_INDEX_ADS_INDEX_H_
#define PARISAX_INDEX_ADS_INDEX_H_

#include <memory>
#include <string>

#include "dist/euclidean.h"
#include "index/flat_sax.h"
#include "index/leaf_storage.h"
#include "index/query_stats.h"
#include "index/raw_source.h"
#include "index/tree.h"
#include "util/status.h"

namespace parisax {

struct AdsBuildOptions {
  SaxTreeOptions tree;
  /// Raw-data-buffer capacity (series per read batch) for streamed
  /// sources.
  size_t batch_series = 8192;
  /// Leaf materialization file. Non-empty enables leaf flushing;
  /// required when the source is not addressable (on-disk mode). The
  /// build-time device model lives in the source (FileSource's stream
  /// profile).
  std::string leaf_storage_path;
  /// Metered leaf-write throughput; <= 0 disables metering.
  double leaf_write_mbps = 0.0;
};

struct AdsBuildStats {
  double wall_seconds = 0.0;
  double read_seconds = 0.0;   ///< blocked on the raw-data device
  double cpu_seconds = 0.0;    ///< summarization + tree building
  double write_seconds = 0.0;  ///< leaf materialization
  TreeStats tree;
};

struct AdsQueryOptions {
  KernelPolicy kernel = KernelPolicy::kAuto;
};

class AdsIndex {
 public:
  /// Builds over an owned raw-series source; the index takes ownership.
  /// Addressable sources (in-RAM, mmap) are summarized in place with no
  /// copy; streamed sources (FileSource) are read batch-by-batch through
  /// the device model and require `options.leaf_storage_path`.
  static Result<std::unique_ptr<AdsIndex>> Build(
      std::unique_ptr<RawSeriesSource> source,
      const AdsBuildOptions& options);

  /// Exact 1-NN by SIMS (serial). Returns the neighbor with the smallest
  /// squared ED; `Neighbor{0, +inf}` for an empty collection.
  Result<Neighbor> SearchExact(SeriesView query,
                               const AdsQueryOptions& options = {},
                               QueryStats* stats = nullptr) const;

  /// Approximate 1-NN: best real distance within the approximate-match
  /// leaf only.
  Result<Neighbor> SearchApproximate(SeriesView query,
                                     QueryStats* stats = nullptr) const;

  const SaxTree& tree() const { return tree_; }
  const FlatSaxCache& cache() const { return cache_; }
  const AdsBuildStats& build_stats() const { return build_stats_; }
  RawSeriesSource* raw_source() const { return source_.get(); }
  LeafStorage* leaf_storage() const { return leaf_storage_.get(); }

 private:
  explicit AdsIndex(const SaxTreeOptions& tree_options)
      : tree_(tree_options) {}

  /// Seeds the BSF from the approximate leaf; shared by both searches.
  Result<Neighbor> ApproximateInternal(SeriesView query, const float* paa,
                                       const SaxSymbols& sax,
                                       KernelPolicy kernel,
                                       QueryStats* stats) const;

  SaxTree tree_;
  FlatSaxCache cache_;
  std::unique_ptr<RawSeriesSource> source_;
  std::unique_ptr<LeafStorage> leaf_storage_;
  AdsBuildStats build_stats_;
};

}  // namespace parisax

#endif  // PARISAX_INDEX_ADS_INDEX_H_
