// Immutable delta segments: the LSM-style ingest unit shared by MESSI
// and ParIS/ParIS+.
//
// An append no longer grows the serving tree in place. It builds a
// *segment* — a self-contained mini iSAX index over the appended id
// range, produced by the same summarize -> parallel-insert pipeline as
// the base tree — and publishes it onto an immutable serving snapshot
// (ServingState). Queries capture one snapshot at entry and merge
// candidates across the base tree and every segment through a single
// shared bound (BestNeighbor / KnnHeap), so appends and queries never
// exclude each other. A background compactor folds segments back into
// the base off the serving path; its splice is a compare-and-publish
// against the snapshot it folded, so a concurrent append can never be
// lost.
#ifndef PARISAX_INDEX_SEGMENT_H_
#define PARISAX_INDEX_SEGMENT_H_

#include <memory>
#include <utility>
#include <vector>

#include "index/flat_sax.h"
#include "index/leaf_storage.h"
#include "index/raw_source.h"
#include "index/tree.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/threading.h"

namespace parisax {

/// One immutable delta segment: an iSAX mini-index over the contiguous
/// id range [first, first + count). Built once, then shared read-only
/// by shared_ptr — readers take no locks. Segment leaves are always
/// fully in memory (no flushed chunks), even for streamed indexes.
struct Segment {
  explicit Segment(const SaxTreeOptions& options) : tree(options) {}

  SeriesId first = 0;
  size_t count = 0;
  SaxTree tree;
  /// Full-cardinality summaries in id order (row i = series first + i).
  /// Filled for ParIS-family indexes, whose exact search filters over
  /// flat SAX rows; empty for MESSI.
  std::vector<SaxSymbols> sax_rows;
};

/// One immutable serving snapshot: the bulk-built base index plus the
/// ordered segment list, captured together with the raw-data view and
/// collection size they cover. Queries read exactly one ServingState
/// for their whole lifetime; publication replaces the shared_ptr, never
/// the pointee.
struct ServingState {
  /// The base tree (bulk build or last fold).
  std::shared_ptr<const SaxTree> base;
  /// Series covered by the base: ids [0, base_count).
  size_t base_count = 0;
  /// Flat SAX rows for the base ids (ParIS family; null for MESSI).
  /// Invariant: cache == nullptr || cache->count() == base_count.
  std::shared_ptr<const FlatSaxCache> cache;
  /// Segments in ascending id order, jointly covering
  /// [base_count, count).
  std::vector<std::shared_ptr<const Segment>> segments;
  /// Contiguous raw values for ids [0, count); base == nullptr for
  /// streamed sources (queries then fetch through the source).
  RawDataView raw;
  /// Total series served by this snapshot.
  size_t count = 0;

  size_t segment_series() const {
    size_t total = 0;
    for (const auto& s : segments) total += s->count;
    return total;
  }
};

/// The publication point: owns the current ServingState shared_ptr and
/// serializes every replacement under one mutex, so an append publish
/// and a compactor splice are atomic with respect to each other. Reads
/// copy the shared_ptr under the same brief lock (a handful of
/// instructions — never held across work).
class ServingDock {
 public:
  std::shared_ptr<const ServingState> get() const {
    MutexLock lock(&mu_);
    return state_;
  }

  void Publish(std::shared_ptr<const ServingState> next) {
    MutexLock lock(&mu_);
    state_ = std::move(next);
  }

  /// Append publish: pushes `segment` onto the current snapshot and
  /// refreshes the raw view / collection size in the same atomic step.
  void PublishAppend(std::shared_ptr<const Segment> segment,
                     RawDataView raw, size_t count) {
    MutexLock lock(&mu_);
    auto next = std::make_shared<ServingState>(*state_);
    next->segments.push_back(std::move(segment));
    next->raw = raw;
    next->count = count;
    state_ = std::move(next);
  }

  /// Compactor splice (major fold): replaces the base and drops the
  /// first `folded` segments, keeping whatever the serving state has
  /// gained since `expected` was captured. Fails — discarding the fold —
  /// unless the current base and the folded segments are
  /// pointer-identical to `expected`'s (i.e. nothing else folded them
  /// meanwhile).
  bool TryFold(const std::shared_ptr<const ServingState>& expected,
               size_t folded, std::shared_ptr<const SaxTree> base,
               std::shared_ptr<const FlatSaxCache> cache,
               size_t base_count) {
    MutexLock lock(&mu_);
    if (!FoldInputsLive(expected, folded)) return false;
    auto next = std::make_shared<ServingState>(*state_);
    next->base = std::move(base);
    next->cache = std::move(cache);
    next->base_count = base_count;
    next->segments.erase(next->segments.begin(),
                         next->segments.begin() + folded);
    state_ = std::move(next);
    return true;
  }

  /// Compactor splice (minor merge): replaces the first `folded`
  /// segments with their merge, under the same identity check as
  /// TryFold.
  bool TryMergeSegments(const std::shared_ptr<const ServingState>& expected,
                        size_t folded,
                        std::shared_ptr<const Segment> merged) {
    MutexLock lock(&mu_);
    if (!FoldInputsLive(expected, folded)) return false;
    auto next = std::make_shared<ServingState>(*state_);
    next->segments.erase(next->segments.begin(),
                         next->segments.begin() + folded);
    next->segments.insert(next->segments.begin(), std::move(merged));
    state_ = std::move(next);
    return true;
  }

 private:
  bool FoldInputsLive(const std::shared_ptr<const ServingState>& expected,
                      size_t folded) const PARISAX_REQUIRES(mu_) {
    if (state_->base != expected->base) return false;
    if (state_->segments.size() < folded) return false;
    for (size_t i = 0; i < folded; ++i) {
      if (state_->segments[i] != expected->segments[i]) return false;
    }
    return true;
  }

  mutable Mutex mu_{"ServingDock::mu_", LockRank::kServingDock};
  std::shared_ptr<const ServingState> state_ PARISAX_GUARDED_BY(mu_);
};

/// Builds a segment over `count` series whose raw values are `values`
/// (count * options.series_length floats, row-major), indexed as ids
/// [first, first + count): the append pipeline run into a fresh tree.
/// `with_sax_rows` additionally materializes the flat SAX rows (ParIS).
Result<std::shared_ptr<const Segment>> BuildSegment(
    const Value* values, size_t count, SeriesId first,
    const SaxTreeOptions& options, bool with_sax_rows, Executor* exec);

/// Builds a segment over [first, first + count) from already-summarized
/// entries (ids must all lie in the range). The snapshot loader
/// rehydrates persisted segments through this; MergeSegments and the
/// fold path reuse it.
Result<std::shared_ptr<const Segment>> SegmentFromEntries(
    const std::vector<LeafEntry>& entries, SeriesId first, size_t count,
    const SaxTreeOptions& options, bool with_sax_rows, Executor* exec);

/// Minor compaction: merges `parts` (ascending, id-contiguous) into one
/// segment covering their combined range.
Result<std::shared_ptr<const Segment>> MergeSegments(
    const std::vector<std::shared_ptr<const Segment>>& parts,
    const SaxTreeOptions& options, Executor* exec);

/// Appends every leaf entry of `tree` onto `out`; `storage` backs
/// leaves with flushed chunks (may be null iff there are none).
Status CollectTreeEntries(const SaxTree& tree, LeafStorage* storage,
                          std::vector<LeafEntry>* out);

/// Bulk-inserts `entries` into the fresh tree `tree`: deterministic
/// (root key, id)-ordered insertion, whole root subtrees in parallel —
/// the builders' no-synchronization-inside-a-subtree discipline. Seals
/// the roots. The major-fold path builds its new base through this.
Status BuildTreeFromEntries(SaxTree* tree,
                            const std::vector<LeafEntry>& entries,
                            Executor* exec);

}  // namespace parisax

#endif  // PARISAX_INDEX_SEGMENT_H_
