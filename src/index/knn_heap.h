// Bounded k-nearest result set: the generalization of the BSF used for
// kNN queries. The pruning bound is the k-th best distance (or +inf until
// k results exist), so it is monotonically non-increasing and all
// BSF-based pruning arguments carry over.
#ifndef PARISAX_INDEX_KNN_HEAP_H_
#define PARISAX_INDEX_KNN_HEAP_H_

#include <algorithm>
#include <atomic>
#include <limits>
#include <vector>

#include "core/types.h"
#include "util/mutex.h"

namespace parisax {

class KnnHeap {
 public:
  explicit KnnHeap(size_t k) : k_(k) {}

  /// Current pruning bound: the k-th best squared distance seen, +inf if
  /// fewer than k results exist. Lock-free: reads the cached copy, which
  /// is refreshed under the mutex after every insert. A concurrent reader
  /// can observe a slightly stale (larger) bound, which only weakens
  /// pruning, never correctness; single-threaded callers always see the
  /// exact value.
  float Bound() const {
    return cached_bound_.load(std::memory_order_relaxed);
  }

  /// Inserts if the candidate improves the result set. Thread-safe.
  ///
  /// The common case under a converged bound is rejection, so it is
  /// served lock-free from a cached copy of the bound: no mutex and no
  /// O(k) duplicate scan. The comparison is strict (>) because a
  /// candidate tying the k-th distance with a smaller id still wins
  /// under Closer's id tie-break. The cache is only ever >= the true
  /// bound (both shrink monotonically), so a stale read can only let a
  /// doomed candidate through to the locked path, never reject a good
  /// one.
  void Update(const Neighbor& candidate) {
    if (candidate.distance_sq >
        cached_bound_.load(std::memory_order_relaxed)) {
      return;
    }
    MutexLock lock(&mu_);
    if (heap_.size() == k_ && !Closer(candidate, heap_.front())) return;
    // Refuse duplicates (the same id can reach the heap via the
    // approximate phase and again via refinement).
    for (const Neighbor& n : heap_) {
      if (n.id == candidate.id) return;
    }
    heap_.push_back(candidate);
    std::push_heap(heap_.begin(), heap_.end(), Closer);
    if (heap_.size() > k_) {
      std::pop_heap(heap_.begin(), heap_.end(), Closer);
      heap_.pop_back();
    }
    cached_bound_.store(BoundLocked(), std::memory_order_relaxed);
  }

  /// Results sorted ascending by (distance, id). Thread-safe.
  std::vector<Neighbor> Sorted() const {
    MutexLock lock(&mu_);
    std::vector<Neighbor> out = heap_;
    std::sort(out.begin(), out.end(), Closer);
    return out;
  }

  size_t k() const { return k_; }

 private:
  /// Max-heap order: the worst (largest distance, then largest id)
  /// element sits at the front.
  static bool Closer(const Neighbor& a, const Neighbor& b) {
    return a.distance_sq < b.distance_sq ||
           (a.distance_sq == b.distance_sq && a.id < b.id);
  }

  float BoundLocked() const PARISAX_REQUIRES(mu_) {
    return heap_.size() == k_ ? heap_.front().distance_sq
                              : std::numeric_limits<float>::infinity();
  }

  const size_t k_;
  mutable Mutex mu_{"KnnHeap::mu_", LockRank::kResultMerge};
  std::vector<Neighbor> heap_ PARISAX_GUARDED_BY(mu_);  // max-heap via Closer
  /// Copy of BoundLocked() refreshed under mu_ after every insert; read
  /// without the lock by Update's fast reject path.
  std::atomic<float> cached_bound_{std::numeric_limits<float>::infinity()};
};

}  // namespace parisax

#endif  // PARISAX_INDEX_KNN_HEAP_H_
