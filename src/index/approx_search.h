// The iSAX approximate search shared by every index-based engine: descend
// the tree to the leaf matching the query's summary and return the best
// real distance among that leaf's series. Exact-search algorithms use the
// result to seed their Best-So-Far bound ("compute BSF" in Figs. 2/3).
#ifndef PARISAX_INDEX_APPROX_SEARCH_H_
#define PARISAX_INDEX_APPROX_SEARCH_H_

#include "dist/euclidean.h"
#include "index/leaf_storage.h"
#include "index/query_stats.h"
#include "index/raw_source.h"
#include "index/tree.h"

namespace parisax {

/// Returns the best (id, squared ED) within the approximate-match leaf,
/// or {0, +inf} for an empty tree. `storage` may be null iff no leaf has
/// flushed chunks.
Result<Neighbor> ApproximateLeafSearch(const SaxTree& tree,
                                       LeafStorage* storage,
                                       const RawSeriesSource& source,
                                       SeriesView query, const float* paa,
                                       const SaxSymbols& sax,
                                       KernelPolicy kernel,
                                       QueryStats* stats);

/// Gate-free variant over a contiguous raw view: reads no source
/// virtuals, so it is safe against a concurrent append that swaps the
/// source's backing buffer (the serving snapshot pins the old view).
/// Used by the segment-based query paths over addressable sources.
Result<Neighbor> ApproximateLeafSearch(const SaxTree& tree,
                                       LeafStorage* storage,
                                       const RawDataView& raw,
                                       SeriesView query, const float* paa,
                                       const SaxSymbols& sax,
                                       KernelPolicy kernel,
                                       QueryStats* stats);

}  // namespace parisax

#endif  // PARISAX_INDEX_APPROX_SEARCH_H_
