#include "index/ingest.h"

#include <algorithm>
#include <utility>

#include "sax/paa.h"
#include "sax/word.h"

namespace parisax {

Status AppendTailToTree(SaxTree* tree, const Value* values, size_t count,
                        SeriesId first, Executor* exec,
                        LeafStorage* storage, FlatSaxCache* cache,
                        std::vector<uint32_t>* touched_roots) {
  if (touched_roots != nullptr) touched_roots->clear();
  if (count == 0) return Status::OK();
  const size_t n = tree->options().series_length;
  const int w = tree->options().segments;

  // Summarize the tail in parallel straight from the caller's buffer
  // (identical values to what the grown source holds). Cache rows are
  // distinct ids, so the parallel writes are race-free.
  struct KeyedEntry {
    uint32_t key;
    LeafEntry entry;
  };
  std::vector<KeyedEntry> keyed(count);
  {
    WorkCounter chunks(count);
    exec->Run([&](int) {
      float paa[kMaxSegments];
      size_t begin, end;
      while (chunks.NextBatch(1024, &begin, &end)) {
        for (size_t i = begin; i < end; ++i) {
          ComputePaa(SeriesView(values + i * n, n), w, paa);
          KeyedEntry& ke = keyed[i];
          ke.entry.id = first + i;
          SymbolsFromPaa(paa, w, &ke.entry.sax);
          if (cache != nullptr) {
            *cache->MutableAt(ke.entry.id) = ke.entry.sax;
          }
          ke.key = RootKey(ke.entry.sax, w);
        }
      }
    });
  }

  // Group by root subtree; ids stay ascending within a key, keeping
  // the insertion order (and therefore the split decisions)
  // deterministic for a given batch.
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const KeyedEntry& a, const KeyedEntry& b) {
                     return a.key < b.key;
                   });
  std::vector<std::pair<size_t, size_t>> ranges;  // [begin, end) per key
  for (size_t i = 0; i < keyed.size();) {
    size_t j = i + 1;
    while (j < keyed.size() && keyed[j].key == keyed[i].key) ++j;
    ranges.emplace_back(i, j);
    i = j;
  }

  // Whole root subtrees claimed by Fetch&Inc, no synchronization
  // inside a subtree.
  Mutex error_mu{"error_mu", LockRank::kFirstError};
  Status first_error;
  {
    WorkCounter range_counter(ranges.size());
    exec->Run([&](int) {
      size_t item;
      while (range_counter.NextItem(&item)) {
        const auto [begin, end] = ranges[item];
        Node* root = tree->GetOrCreateRoot(keyed[begin].key);
        for (size_t i = begin; i < end; ++i) {
          const Status st =
              tree->InsertIntoSubtree(root, keyed[i].entry, storage);
          if (!st.ok()) {
            MutexLock lock(&error_mu);
            if (first_error.ok()) first_error = st;
            return;
          }
        }
      }
    });
  }
  PARISAX_RETURN_IF_ERROR(first_error);

  tree->SealRoots();
  if (touched_roots != nullptr) {
    touched_roots->reserve(ranges.size());
    for (const auto& [begin, end] : ranges) {
      touched_roots->push_back(keyed[begin].key);
    }
  }
  return Status::OK();
}

}  // namespace parisax
