// On-disk materialization of leaf contents (ParIS/ParIS+ stage 3).
//
// A LeafStorage is an append-only file of LeafEntry records. Flushing a
// leaf appends its in-memory entries as one chunk and records a
// LeafChunkRef in the node; splitting or searching a flushed leaf reads
// the chunks back. Appends are optionally metered at a configurable write
// throughput so index-creation benchmarks can account a "Write" cost the
// way the paper's Fig. 4 does.
#ifndef PARISAX_INDEX_LEAF_STORAGE_H_
#define PARISAX_INDEX_LEAF_STORAGE_H_

#include <atomic>
#include <string>
#include <vector>

#include "index/node.h"
#include "util/mutex.h"
#include "util/status.h"

namespace parisax {

class LeafStorage {
 public:
  /// Creates (truncates) the backing file. `write_mbps <= 0` disables
  /// write metering.
  static Result<std::unique_ptr<LeafStorage>> Create(const std::string& path,
                                                     double write_mbps = 0.0);
  ~LeafStorage();

  LeafStorage(const LeafStorage&) = delete;
  LeafStorage& operator=(const LeafStorage&) = delete;

  /// Appends `entries` as one chunk; returns its reference. Thread-safe.
  Result<LeafChunkRef> AppendChunk(const std::vector<LeafEntry>& entries);

  /// Reads a chunk back, appending onto `out`. Thread-safe.
  Status ReadChunk(const LeafChunkRef& ref, std::vector<LeafEntry>* out);

  /// Total bytes appended so far.
  uint64_t bytes_written() const {
    MutexLock lock(&mu_);
    return bytes_written_;
  }

  /// Wall seconds spent inside (metered) appends.
  double write_seconds() const {
    MutexLock lock(&mu_);
    return write_seconds_;
  }

  /// Chunks appended / read back so far (thread-safe counters).
  uint64_t chunks_appended() const {
    return chunks_appended_.load(std::memory_order_relaxed);
  }
  uint64_t chunks_read() const {
    return chunks_read_.load(std::memory_order_relaxed);
  }

 private:
  LeafStorage(int fd, std::string path, double write_mbps);

  mutable Mutex mu_{"LeafStorage::mu_", LockRank::kLeafStorage};
  // fd_, path_ and ns_per_byte_ are immutable after construction.
  int fd_;
  std::string path_;
  double ns_per_byte_ = 0.0;
  uint64_t tail_ PARISAX_GUARDED_BY(mu_) = 0;
  uint64_t bytes_written_ PARISAX_GUARDED_BY(mu_) = 0;
  double write_seconds_ PARISAX_GUARDED_BY(mu_) = 0.0;
  int64_t sleep_debt_ns_ PARISAX_GUARDED_BY(mu_) = 0;
  std::atomic<uint64_t> chunks_appended_{0};
  std::atomic<uint64_t> chunks_read_{0};
};

/// Appends the complete contents of `leaf` (in-memory entries plus any
/// flushed chunks) onto `out`. `storage` may be null iff the leaf has no
/// flushed chunks.
Status CollectLeafEntries(const Node& leaf, LeafStorage* storage,
                          std::vector<LeafEntry>* out);

}  // namespace parisax

#endif  // PARISAX_INDEX_LEAF_STORAGE_H_
