// The flat SAX array: full-cardinality summaries of every series, stored
// contiguously in series order. ParIS/ParIS+ and ADS+ scan this array to
// filter candidates during exact query answering ("the iSAX
// summarizations are also stored in the array SAX (used during query
// answering)").
#ifndef PARISAX_INDEX_FLAT_SAX_H_
#define PARISAX_INDEX_FLAT_SAX_H_

#include <cassert>

#include "core/types.h"
#include "sax/word.h"
#include "util/aligned.h"

namespace parisax {

class FlatSaxCache {
 public:
  FlatSaxCache() = default;

  explicit FlatSaxCache(size_t count) : count_(count), data_(count) {}

  size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }

  const SaxSymbols& At(SeriesId i) const {
    assert(i < count_);
    return data_[i];
  }

  /// Distinct ids may be written concurrently (distinct objects).
  SaxSymbols* MutableAt(SeriesId i) {
    assert(i < count_);
    return &data_[i];
  }

  /// Grows the array to `new_count` summaries, preserving the existing
  /// ones (the append path). May invalidate At()/MutableAt() pointers;
  /// callers must exclude concurrent readers. Capacity grows
  /// geometrically (AlignedBuffer::GrowTo), so repeated small appends
  /// cost amortized O(1) copying per new row.
  void Grow(size_t new_count) {
    assert(new_count >= count_);
    data_.GrowTo(new_count, count_);
    count_ = new_count;
  }

 private:
  size_t count_ = 0;
  AlignedBuffer<SaxSymbols> data_;
};

}  // namespace parisax

#endif  // PARISAX_INDEX_FLAT_SAX_H_
