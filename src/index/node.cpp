#include "index/node.h"

#include <cassert>

namespace parisax {

void Node::MakeInner(int segment) {
  assert(IsLeaf());
  assert(word_.bits[segment] < kMaxCardBits);
  split_segment_ = segment;
  for (int bit = 0; bit < 2; ++bit) {
    SaxWord child_word = word_;
    child_word.bits[segment] = static_cast<uint8_t>(word_.bits[segment] + 1);
    child_word.symbols[segment] =
        static_cast<uint8_t>((word_.symbols[segment] << 1) | bit);
    children_[bit] = std::make_unique<Node>(child_word);
  }
}

}  // namespace parisax
