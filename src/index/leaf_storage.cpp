#include "index/leaf_storage.h"

#include <fcntl.h>
#include <unistd.h>

#include <chrono>
#include <thread>

#include "util/timer.h"

namespace parisax {

LeafStorage::LeafStorage(int fd, std::string path, double write_mbps)
    : fd_(fd), path_(std::move(path)) {
  if (write_mbps > 0.0) {
    ns_per_byte_ = 1e9 / (write_mbps * 1024.0 * 1024.0);
  }
}

LeafStorage::~LeafStorage() { ::close(fd_); }

Result<std::unique_ptr<LeafStorage>> LeafStorage::Create(
    const std::string& path, double write_mbps) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError("cannot create leaf storage file: " + path);
  }
  return std::unique_ptr<LeafStorage>(
      new LeafStorage(fd, path, write_mbps));
}

Result<LeafChunkRef> LeafStorage::AppendChunk(
    const std::vector<LeafEntry>& entries) {
  if (entries.empty()) {
    return Status::InvalidArgument("cannot append an empty leaf chunk");
  }
  WallTimer timer;
  MutexLock lock(&mu_);
  const size_t bytes = entries.size() * sizeof(LeafEntry);
  LeafChunkRef ref;
  ref.offset = tail_;
  ref.count = static_cast<uint32_t>(entries.size());

  const char* src = reinterpret_cast<const char*>(entries.data());
  size_t remaining = bytes;
  uint64_t pos = tail_;
  while (remaining > 0) {
    const ssize_t n =
        ::pwrite(fd_, src, remaining, static_cast<off_t>(pos));
    if (n < 0) return Status::IOError("pwrite failed on " + path_);
    src += n;
    pos += static_cast<uint64_t>(n);
    remaining -= static_cast<size_t>(n);
  }
  tail_ += bytes;
  bytes_written_ += bytes;
  chunks_appended_.fetch_add(1, std::memory_order_relaxed);

  if (ns_per_byte_ > 0.0) {
    // Accumulate metering debt and only sleep once it exceeds the OS
    // sleep granularity; per-chunk sub-microsecond sleeps would otherwise
    // cost ~100x their nominal duration.
    sleep_debt_ns_ +=
        static_cast<int64_t>(static_cast<double>(bytes) * ns_per_byte_);
    constexpr int64_t kMinSleepNs = 1000000;  // 1 ms
    if (sleep_debt_ns_ >= kMinSleepNs) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(sleep_debt_ns_));
      sleep_debt_ns_ = 0;
    }
  }
  write_seconds_ += timer.ElapsedSeconds();
  return ref;
}

Status CollectLeafEntries(const Node& leaf, LeafStorage* storage,
                          std::vector<LeafEntry>* out) {
  out->insert(out->end(), leaf.entries().begin(), leaf.entries().end());
  for (const LeafChunkRef& ref : leaf.flushed_chunks()) {
    if (storage == nullptr) {
      return Status::Internal("leaf has flushed chunks but no LeafStorage");
    }
    PARISAX_RETURN_IF_ERROR(storage->ReadChunk(ref, out));
  }
  return Status::OK();
}

Status LeafStorage::ReadChunk(const LeafChunkRef& ref,
                              std::vector<LeafEntry>* out) {
  chunks_read_.fetch_add(1, std::memory_order_relaxed);
  const size_t old_size = out->size();
  out->resize(old_size + ref.count);
  char* dst = reinterpret_cast<char*>(out->data() + old_size);
  size_t remaining = ref.count * sizeof(LeafEntry);
  uint64_t pos = ref.offset;
  while (remaining > 0) {
    const ssize_t n = ::pread(fd_, dst, remaining, static_cast<off_t>(pos));
    if (n < 0) return Status::IOError("pread failed on " + path_);
    if (n == 0) return Status::Corruption("truncated leaf chunk in " + path_);
    dst += n;
    pos += static_cast<uint64_t>(n);
    remaining -= static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace parisax
