// MESSI's iSAX buffers: per-root-subtree staging between summarization
// (Stage 1) and tree construction (Stage 2).
//
// "To reduce synchronization cost, each iSAX buffer is split into parts
// and each worker works on its own part" -- appends in partitioned mode
// are lock-free. The locked alternative the paper rejected in footnote 2
// ("each buffer was protected by a lock ... worse performance due to
// contention") is also implemented, selectable for the D1 ablation bench.
#ifndef PARISAX_MESSI_ISAX_BUFFERS_H_
#define PARISAX_MESSI_ISAX_BUFFERS_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "index/node.h"
#include "util/mutex.h"

namespace parisax {

class IsaxBufferSet {
 public:
  /// `locked_mode` selects the footnote-2 alternative: one shared vector
  /// per key behind a per-key mutex, instead of per-worker parts.
  IsaxBufferSet(int segments, int num_workers, bool locked_mode)
      : num_keys_(static_cast<size_t>(1) << segments),
        num_workers_(num_workers),
        locked_(locked_mode) {
    if (locked_) {
      shared_parts_.resize(num_keys_);
      locks_ = std::make_unique<KeyLock[]>(num_keys_);
      listed_.assign(num_keys_, 0);
      touched_per_worker_.resize(num_workers);
    } else {
      parts_.resize(num_workers);
      for (auto& p : parts_) p.resize(num_keys_);
      touched_per_worker_.resize(num_workers);
    }
  }

  /// Appends an entry produced by `worker` to buffer `key`.
  void Append(int worker, uint32_t key, const LeafEntry& entry) {
    if (locked_) {
      MutexLock lock(&locks_[key].mu);
      shared_parts_[key].push_back(entry);
      if (listed_[key] == 0) {
        listed_[key] = 1;
        touched_per_worker_[worker].push_back(key);
      }
      return;
    }
    auto& part = parts_[worker][key];
    if (part.empty()) touched_per_worker_[worker].push_back(key);
    part.push_back(entry);
  }

  /// Union of keys appended to by any worker, deduplicated and sorted.
  /// Call after Stage 1 has fully completed (no concurrent appends).
  std::vector<uint32_t> CollectKeys() const {
    std::vector<uint32_t> keys;
    for (const auto& per_worker : touched_per_worker_) {
      keys.insert(keys.end(), per_worker.begin(), per_worker.end());
    }
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    return keys;
  }

  /// Appends all parts of buffer `key` onto `out`. Call after Stage 1.
  void Gather(uint32_t key, std::vector<LeafEntry>* out) const {
    if (locked_) {
      out->insert(out->end(), shared_parts_[key].begin(),
                  shared_parts_[key].end());
      return;
    }
    for (const auto& worker_parts : parts_) {
      const auto& part = worker_parts[key];
      out->insert(out->end(), part.begin(), part.end());
    }
  }

  bool locked_mode() const { return locked_; }
  int num_workers() const { return num_workers_; }

 private:
  const size_t num_keys_;
  const int num_workers_;
  const bool locked_;

  /// Wrapper so the per-key lock array can be built with new[]: Mutex
  /// has no default constructor (every lock needs a name and rank), so
  /// the element supplies them as default member initializers.
  struct KeyLock {
    Mutex mu{"IsaxBufferSet::locks_[key]", LockRank::kBuildBuffer};
  };

  // Partitioned mode: parts_[worker][key].
  std::vector<std::vector<std::vector<LeafEntry>>> parts_;
  // Locked mode: one shared vector per key.
  std::vector<std::vector<LeafEntry>> shared_parts_;
  std::unique_ptr<KeyLock[]> locks_;
  std::vector<uint8_t> listed_;  // guarded by locks_[key]

  std::vector<std::vector<uint32_t>> touched_per_worker_;
};

}  // namespace parisax

#endif  // PARISAX_MESSI_ISAX_BUFFERS_H_
