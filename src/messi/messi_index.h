// MESSI: the first parallel in-memory data series index, reproduced from
//   Peng, Fatourou, Palpanas. "MESSI: In-Memory Data Series Indexing"
//   (ICDE 2020), as summarized in the thesis paper.
//
// Index construction (Fig. 3, Stages 1-2): the in-memory RawData array is
// split into chunks assigned to index workers by Fetch&Inc; workers write
// iSAX summaries into per-thread parts of per-root-subtree iSAX buffers
// (no locks); after a barrier, workers claim whole buffers by Fetch&Inc
// and build the corresponding root subtrees independently.
//
// Query answering (Stage 3): seed the BSF from the approximate-match
// leaf; workers traverse root subtrees pruning with mindist against the
// BSF and push surviving leaves into K shared priority queues
// (round-robin); workers then pop queues, abandoning a queue as soon as
// its minimum exceeds the BSF, computing per-entry lower bounds and
// early-abandoning real distances for what survives.
//
// Incremental ingest (beyond the paper): the index serves an immutable
// snapshot — the bulk-built base tree plus an ordered list of delta
// segments (src/index/segment.h). Append builds a new segment and
// publishes it; queries capture one snapshot at entry and run the
// paper's Stage 3 over the base's and every segment's root subtrees
// under a single shared bound, so appends never exclude queries.
//
// Extensions implemented beyond the exact-ED query: kNN search and DTW
// search on the unchanged index (the paper's "current work").
#ifndef PARISAX_MESSI_MESSI_INDEX_H_
#define PARISAX_MESSI_MESSI_INDEX_H_

#include <memory>
#include <vector>

#include "dist/euclidean.h"
#include "index/query_stats.h"
#include "index/raw_source.h"
#include "index/segment.h"
#include "index/tree.h"
#include "util/cancellation.h"
#include "util/status.h"
#include "util/threading.h"

namespace parisax {

struct MessiBuildOptions {
  /// Index worker count (used for both stages).
  int num_workers = 4;
  /// Chunk size (series) for Fetch&Inc work distribution in Stage 1.
  size_t chunk_series = 4096;
  /// Footnote-2 ablation: use one lock per iSAX buffer instead of
  /// per-thread buffer parts.
  bool locked_buffers = false;
  SaxTreeOptions tree;
};

struct MessiBuildStats {
  double wall_seconds = 0.0;
  /// Stage 1 wall time: "Calculate iSAX Representations" in Fig. 5.
  double summarize_wall_seconds = 0.0;
  /// Stage 2 wall time: "Tree Index Construction" in Fig. 5.
  double tree_wall_seconds = 0.0;
  TreeStats tree;
};

struct MessiQueryOptions {
  int num_workers = 4;
  /// Shared priority queues; 0 means one per worker (design choice D2).
  int num_queues = 0;
  KernelPolicy kernel = KernelPolicy::kAuto;
  /// Sakoe-Chiba band radius (points) for DTW searches.
  size_t dtw_band = 12;
  /// Cancel/deadline token polled at leaf-visit granularity in Stage 3
  /// (both the traversal and the queue-consumption loops); an expired
  /// search returns kDeadlineExceeded instead of a partial answer. The
  /// caller keeps the token alive; null never expires.
  const CancellationToken* cancel = nullptr;
  /// Optional cross-search pruning bound (the shard router's shared
  /// BSF): folded into the local bound with min() and improved through
  /// UpdateMin whenever this search tightens its own bound. The caller
  /// keeps the cell alive and guarantees its value never drops below
  /// the query's true global answer, so pruning on it stays exact.
  /// Null: only the local bound prunes.
  AtomicMinFloat* shared_bound = nullptr;
};

class SnapshotReader;

class MessiIndex {
 public:
  /// Builds over an owned raw-series source. The source must be directly
  /// addressable (an InMemorySource or MmapSource — MESSI's RawData array
  /// lives in memory); building over an MmapSource runs Stage 1 straight
  /// off the page cache with no in-RAM copy of the collection. The index
  /// takes ownership of the source.
  static Result<std::unique_ptr<MessiIndex>> Build(
      std::unique_ptr<RawSeriesSource> source,
      const MessiBuildOptions& options, ThreadPool* pool);

  /// Incremental ingest: appends `count` series (count * length values,
  /// row-major, already z-normalized) to the owned source, then builds
  /// an immutable delta segment over just the new ids and publishes it
  /// onto the serving snapshot. `touched_roots` (optional) receives the
  /// ascending root keys the segment populated. Queries proceed
  /// concurrently (they keep the snapshot they captured at entry);
  /// callers serialize appends with each other (the Engine append mutex
  /// does). Requires source().appendable().
  Status Append(const Value* values, size_t count, Executor* exec,
                std::vector<uint32_t>* touched_roots = nullptr);

  // Query paths take an Executor rather than owning threads: pass a
  // ThreadPool to fan one query out over every core (the paper's Stage
  // 3), or an InlineExecutor to confine it to the calling thread so many
  // queries can run concurrently (the serve layer's throughput mode).
  // All per-query state is local to the call (including the serving
  // snapshot it captures at entry), so any number of searches may run
  // at once as long as each executor supports it.

  /// Exact 1-NN under squared ED. `Neighbor{0, +inf}` if empty.
  Result<Neighbor> SearchExact(SeriesView query,
                               const MessiQueryOptions& options,
                               Executor* exec,
                               QueryStats* stats = nullptr) const;

  /// Exact k-NN under squared ED, ascending (distance, id).
  Result<std::vector<Neighbor>> SearchKnn(SeriesView query, size_t k,
                                          const MessiQueryOptions& options,
                                          Executor* exec,
                                          QueryStats* stats = nullptr) const;

  /// Exact 1-NN under banded DTW (squared cost), through the unchanged
  /// index.
  Result<Neighbor> SearchExactDtw(SeriesView query,
                                  const MessiQueryOptions& options,
                                  Executor* exec,
                                  QueryStats* stats = nullptr) const;

  /// Approximate 1-NN: best real distance within the matching leaf of
  /// the base and of every segment.
  Result<Neighbor> SearchApproximate(SeriesView query,
                                     QueryStats* stats = nullptr) const;

  /// Current serving snapshot (base + segments). Cheap: copies one
  /// shared_ptr under a brief lock.
  std::shared_ptr<const ServingState> serving() const { return dock_.get(); }

  /// Folds the first `folded` segments of `snap` into a fresh base tree
  /// and splices it in. Runs entirely off the serving path; the splice
  /// is discarded (returns false) if the serving state's base or folded
  /// segments changed since `snap` was captured. Safe to run
  /// concurrently with queries and appends.
  Result<bool> FoldSegments(const std::shared_ptr<const ServingState>& snap,
                            size_t folded, Executor* exec);

  /// Minor compaction: merges the first `folded` segments of `snap` into
  /// one segment (same discard semantics as FoldSegments).
  Result<bool> MergeSegmentRun(
      const std::shared_ptr<const ServingState>& snap, size_t folded,
      Executor* exec);

  /// Base tree of the current snapshot. For quiescent callers (tests,
  /// invariant checks): the reference is only stable while nothing
  /// publishes a new snapshot.
  const SaxTree& tree() const { return *dock_.get()->base; }
  const SaxTreeOptions& tree_options() const { return tree_options_; }
  const MessiBuildStats& build_stats() const { return build_stats_; }
  /// The raw series the index answers queries against: an InMemorySource
  /// over the build-time dataset, or the source (e.g. an MmapSource)
  /// attached when the index was restored from a snapshot.
  const RawSeriesSource& source() const { return *source_; }
  /// Series in the indexed collection (as of the current snapshot).
  size_t series_count() const { return dock_.get()->count; }

 private:
  /// Snapshot restore (src/persist/) reconstructs the serving state.
  friend class SnapshotReader;

  explicit MessiIndex(const SaxTreeOptions& tree_options)
      : tree_options_(tree_options) {}

  /// Takes ownership of `source`; fails if the source is not directly
  /// addressable (MESSI computes real distances on raw values in
  /// memory).
  Status AttachSource(std::unique_ptr<RawSeriesSource> source);

  SaxTreeOptions tree_options_;
  std::unique_ptr<RawSeriesSource> source_;
  /// The serving snapshot publication point (see segment.h).
  ServingDock dock_;
  MessiBuildStats build_stats_;
};

}  // namespace parisax

#endif  // PARISAX_MESSI_MESSI_INDEX_H_
