#include "messi/messi_index.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <limits>
#include <queue>
#include <utility>

#include "dist/dtw.h"
#include "index/approx_search.h"
#include "index/knn_heap.h"
#include "messi/isax_buffers.h"
#include "sax/mindist.h"
#include "sax/paa.h"
#include "util/mutex.h"
#include "util/timer.h"

namespace parisax {

namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();

struct QueueItem {
  float lb = 0.0f;
  Node* leaf = nullptr;
};

struct QueueItemGreater {
  bool operator()(const QueueItem& a, const QueueItem& b) const {
    return a.lb > b.lb;
  }
};

/// One of the K shared minimum priority queues of Stage 3.
struct SharedQueue {
  Mutex mu{"SharedQueue::mu", LockRank::kQueryQueue};
  std::priority_queue<QueueItem, std::vector<QueueItem>, QueueItemGreater> pq
      PARISAX_GUARDED_BY(mu);
  bool done PARISAX_GUARDED_BY(mu) = false;
};

struct AtomicCounters {
  std::atomic<uint64_t> lb_checks{0};
  std::atomic<uint64_t> real_dist_calcs{0};
  std::atomic<uint64_t> nodes_visited{0};
  std::atomic<uint64_t> leaves_inspected{0};
  std::atomic<uint64_t> queue_abandons{0};

  void FlushInto(QueryStats* stats) const {
    if (stats == nullptr) return;
    stats->lb_checks += lb_checks.load();
    stats->real_dist_calcs += real_dist_calcs.load();
    stats->nodes_visited += nodes_visited.load();
    stats->leaves_inspected += leaves_inspected.load();
    stats->queue_abandons += queue_abandons.load();
  }
};

/// Root subtrees of one serving snapshot: the base's present roots
/// followed by every segment's. Stage 3 treats them as one flat forest
/// pruned against one shared bound — the read-side merge.
std::vector<Node*> CollectRoots(const ServingState& snap) {
  std::vector<Node*> roots;
  for (const uint32_t key : snap.base->PresentRoots()) {
    roots.push_back(snap.base->RootAt(key));
  }
  for (const auto& seg : snap.segments) {
    for (const uint32_t key : seg->tree.PresentRoots()) {
      roots.push_back(seg->tree.RootAt(key));
    }
  }
  return roots;
}

/// Tree traversal + priority-queue consumption shared by the ED-NN,
/// ED-kNN and DTW-NN searches, over the merged root forest of one
/// serving snapshot. `Policy` supplies the pruning bound, the
/// node/entry lower bounds and the entry refinement:
///   float Bound() const;
///   float NodeLb(const Node&) const;
///   void ProcessEntry(const LeafEntry&, AtomicCounters*, int worker);
/// Everything mutable lives in the policy or on this stack frame, so any
/// number of queued searches can run concurrently on different
/// executors.
template <typename Policy>
void RunQueuedSearch(const std::vector<Node*>& roots, Policy* policy,
                     int num_queues, Executor* exec,
                     AtomicCounters* counters,
                     const CancellationToken* cancel = nullptr) {
  std::vector<SharedQueue> queues(num_queues);
  std::atomic<uint64_t> round_robin{0};

  // Stage 3a: parallel traversal, leaves into queues (round-robin for
  // load balance, as in the paper). Workers poll the cancel token per
  // node visit and bail out; the caller turns an expired token into
  // kDeadlineExceeded instead of returning the partial bound.
  WorkCounter root_counter(roots.size());
  exec->Run([&](int) {
    std::vector<Node*> stack;
    size_t item;
    while (root_counter.NextItem(&item)) {
      stack.push_back(roots[item]);
      while (!stack.empty()) {
        if (Expired(cancel)) return;
        Node* node = stack.back();
        stack.pop_back();
        counters->nodes_visited.fetch_add(1, std::memory_order_relaxed);
        const float lb = policy->NodeLb(*node);
        if (lb >= policy->Bound()) continue;  // prune the whole subtree
        if (node->IsLeaf()) {
          if (node->entries().empty()) continue;
          const uint64_t slot =
              round_robin.fetch_add(1, std::memory_order_relaxed);
          SharedQueue& q = queues[slot % queues.size()];
          MutexLock lock(&q.mu);
          q.pq.push(QueueItem{lb, node});
        } else {
          stack.push_back(node->child(0));
          stack.push_back(node->child(1));
        }
      }
    }
  });

  // Stage 3b: workers consume the queues; a queue whose minimum exceeds
  // the BSF is abandoned wholesale (everything below it is farther).
  std::atomic<uint64_t> start_counter{0};
  exec->Run([&](int worker) {
    const int k_queues = static_cast<int>(queues.size());
    const int start = static_cast<int>(
        start_counter.fetch_add(1, std::memory_order_relaxed) %
        static_cast<uint64_t>(k_queues));
    for (;;) {
      bool all_done = true;
      for (int offset = 0; offset < k_queues; ++offset) {
        SharedQueue& q = queues[(start + offset) % k_queues];
        for (;;) {
          QueueItem item;
          {
            MutexLock lock(&q.mu);
            if (q.done) break;
            if (q.pq.empty()) {
              q.done = true;
              break;
            }
            item = q.pq.top();
            if (item.lb >= policy->Bound()) {
              q.done = true;
              counters->queue_abandons.fetch_add(1,
                                                 std::memory_order_relaxed);
              break;
            }
            q.pq.pop();
          }
          if (Expired(cancel)) return;
          all_done = false;
          counters->leaves_inspected.fetch_add(1, std::memory_order_relaxed);
          for (const LeafEntry& e : item.leaf->entries()) {
            policy->ProcessEntry(e, counters, worker);
          }
        }
      }
      if (all_done) return;
    }
  });
}

/// Thread-safe single best neighbor (1-NN result set). When a shared
/// cross-search bound cell is attached, Bound() folds it in with min()
/// and every improvement (the seed included) is published to it — so
/// the shard router's other searches prune on this search's progress.
/// `best` itself only tracks distances computed *here*, which keeps the
/// merged cross-shard result exact: the cell never drops below the true
/// global answer, so the globally best series is never pruned on its
/// own shard.
struct BestNeighbor {
  BestNeighbor(Neighbor seed, AtomicMinFloat* shared)
      : bsf(seed.distance_sq), shared(shared), best(seed) {
    if (shared != nullptr) shared->UpdateMin(seed.distance_sq);
  }

  float Bound() const {
    const float local = bsf.Load();
    return shared != nullptr ? std::min(local, shared->Load()) : local;
  }

  void Offer(SeriesId id, float d) {
    if (shared != nullptr) shared->UpdateMin(d);
    if (!bsf.UpdateMin(d) && d > bsf.Load()) return;
    MutexLock lock(&mu);
    if (d < best.distance_sq || (d == best.distance_sq && id < best.id)) {
      best = Neighbor{id, d};
    }
  }

  /// Final answer; the searches read it only after the worker fan-in
  /// (Executor::Run has joined), but it still locks for the analysis
  /// and for any future streaming reader.
  Neighbor Take() const {
    MutexLock lock(&mu);
    return best;
  }

  AtomicMinFloat bsf;
  AtomicMinFloat* shared;
  mutable Mutex mu{"BestNeighbor::mu", LockRank::kResultMerge};
  Neighbor best PARISAX_GUARDED_BY(mu);
};

/// Exact-ED 1-NN policy.
struct EdNnPolicy {
  RawDataView raw;
  const float* paa;
  int w;
  size_t n;
  KernelPolicy kernel;
  SeriesView query;
  BestNeighbor* result;

  float Bound() const { return result->Bound(); }

  float NodeLb(const Node& node) const {
    return MinDistPaaToWordSq(paa, node.word(), w, n);
  }

  void ProcessEntry(const LeafEntry& e, AtomicCounters* counters,
                    int /*worker*/) {
    counters->lb_checks.fetch_add(1, std::memory_order_relaxed);
    const float bound = Bound();
    if (MinDistPaaToSymbolsSq(paa, e.sax, w, n) >= bound) return;
    counters->real_dist_calcs.fetch_add(1, std::memory_order_relaxed);
    const float d = SquaredEuclideanEarlyAbandon(query, raw.series(e.id),
                                                 bound, kernel);
    if (d < bound) result->Offer(e.id, d);
  }
};

/// Exact-ED kNN policy: the bound is the k-th best distance, optionally
/// folded with a shared cross-search bound. Publishing the local heap's
/// bound is sound because every shard's local k-th distance is an upper
/// bound on the global k-th distance.
struct EdKnnPolicy {
  RawDataView raw;
  const float* paa;
  int w;
  size_t n;
  KernelPolicy kernel;
  SeriesView query;
  KnnHeap* heap;
  AtomicMinFloat* shared;

  float Bound() const {
    const float local = heap->Bound();
    return shared != nullptr ? std::min(local, shared->Load()) : local;
  }

  float NodeLb(const Node& node) const {
    return MinDistPaaToWordSq(paa, node.word(), w, n);
  }

  void ProcessEntry(const LeafEntry& e, AtomicCounters* counters,
                    int /*worker*/) {
    counters->lb_checks.fetch_add(1, std::memory_order_relaxed);
    const float bound = Bound();
    if (MinDistPaaToSymbolsSq(paa, e.sax, w, n) >= bound) return;
    counters->real_dist_calcs.fetch_add(1, std::memory_order_relaxed);
    const float d = SquaredEuclideanEarlyAbandon(query, raw.series(e.id),
                                                 bound, kernel);
    if (d < bound) {
      heap->Update(Neighbor{e.id, d});
      if (shared != nullptr) shared->UpdateMin(heap->Bound());
    }
  }
};

/// Exact-DTW 1-NN policy: envelope-based lower bounds cascade into
/// LB_Keogh and finally early-abandoning banded DTW.
struct DtwNnPolicy {
  RawDataView raw;
  const float* env_lower_paa;
  const float* env_upper_paa;
  const std::vector<Value>* env_lower;
  const std::vector<Value>* env_upper;
  int w;
  size_t n;
  size_t band;
  SeriesView query;
  BestNeighbor* result;
  /// Per-worker DP arenas owned by the query (one per executor worker),
  /// so concurrent DTW queries never share scratch state.
  std::vector<DtwScratch>* scratches;

  float Bound() const { return result->Bound(); }

  float NodeLb(const Node& node) const {
    return MinDistEnvelopePaaToWordSq(env_lower_paa, env_upper_paa,
                                      node.word(), w, n);
  }

  void ProcessEntry(const LeafEntry& e, AtomicCounters* counters,
                    int worker) {
    counters->lb_checks.fetch_add(1, std::memory_order_relaxed);
    float bound = Bound();
    if (MinDistEnvelopePaaToSymbolsSq(env_lower_paa, env_upper_paa, e.sax, w,
                                      n) >= bound) {
      return;
    }
    const SeriesView candidate = raw.series(e.id);
    if (LbKeoghSq(*env_lower, *env_upper, candidate, bound) >= bound) return;
    counters->real_dist_calcs.fetch_add(1, std::memory_order_relaxed);
    bound = Bound();
    const float d =
        DtwBand(query, candidate, band, bound, &(*scratches)[worker]);
    if (d < bound) result->Offer(e.id, d);
  }
};

/// Best (distance, id) across `a` and `b`.
Neighbor BetterNeighbor(const Neighbor& a, const Neighbor& b) {
  if (b.distance_sq < a.distance_sq ||
      (b.distance_sq == a.distance_sq && b.id < a.id)) {
    return b;
  }
  return a;
}

/// Approximate probe merged across the snapshot's base and segments:
/// the BSF seed for the exact searches.
Result<Neighbor> ProbeAllTrees(const ServingState& snap, SeriesView query,
                               const float* paa, const SaxSymbols& sax,
                               KernelPolicy kernel, QueryStats* stats) {
  Neighbor best{0, kInf};
  Neighbor cand;
  PARISAX_ASSIGN_OR_RETURN(
      cand, ApproximateLeafSearch(*snap.base, /*storage=*/nullptr, snap.raw,
                                  query, paa, sax, kernel, stats));
  best = BetterNeighbor(best, cand);
  for (const auto& seg : snap.segments) {
    PARISAX_ASSIGN_OR_RETURN(
        cand, ApproximateLeafSearch(seg->tree, /*storage=*/nullptr,
                                    snap.raw, query, paa, sax, kernel,
                                    stats));
    best = BetterNeighbor(best, cand);
  }
  return best;
}

}  // namespace

Status MessiIndex::AttachSource(std::unique_ptr<RawSeriesSource> source) {
  if (source->length() != tree_options_.series_length) {
    return Status::InvalidArgument(
        "raw source length does not match the index");
  }
  if (source->ContiguousData() == nullptr && source->count() > 0) {
    return Status::NotSupported(
        "MESSI requires a directly addressable raw source (in-memory or "
        "mmap)");
  }
  source_ = std::move(source);
  return Status::OK();
}

Result<std::unique_ptr<MessiIndex>> MessiIndex::Build(
    std::unique_ptr<RawSeriesSource> source,
    const MessiBuildOptions& options, ThreadPool* pool) {
  if (source == nullptr) {
    return Status::InvalidArgument("source must not be null");
  }
  if (source->length() != options.tree.series_length) {
    return Status::InvalidArgument(
        "tree.series_length does not match the source");
  }
  if (pool->num_threads() < options.num_workers) {
    return Status::InvalidArgument(
        "thread pool is smaller than num_workers");
  }
  WallTimer wall;
  auto index = std::unique_ptr<MessiIndex>(new MessiIndex(options.tree));
  const size_t total_series = source->count();
  PARISAX_RETURN_IF_ERROR(index->AttachSource(std::move(source)));
  // Stage 1 reads through the hot-path view, so an mmap-backed source is
  // summarized straight off the page cache (no in-RAM copy).
  const RawDataView raw{index->source_->ContiguousData(),
                        options.tree.series_length};
  const int w = options.tree.segments;

  auto base = std::make_shared<SaxTree>(options.tree);
  IsaxBufferSet buffers(w, pool->num_threads(), options.locked_buffers);

  // Stage 1: summarization into the iSAX buffers, chunks by Fetch&Inc.
  WallTimer summarize_timer;
  {
    WorkCounter chunks(total_series);
    pool->Run([&](int worker) {
      float paa[kMaxSegments];
      size_t begin, end;
      while (chunks.NextBatch(options.chunk_series, &begin, &end)) {
        for (SeriesId i = begin; i < end; ++i) {
          ComputePaa(raw.series(i), w, paa);
          LeafEntry entry;
          entry.id = i;
          SymbolsFromPaa(paa, w, &entry.sax);
          buffers.Append(worker, RootKey(entry.sax, w), entry);
        }
      }
    });
  }
  index->build_stats_.summarize_wall_seconds =
      summarize_timer.ElapsedSeconds();

  // Stage 2: each worker builds whole root subtrees, claimed by
  // Fetch&Inc; no synchronization inside a subtree.
  WallTimer tree_timer;
  Mutex error_mu{"error_mu", LockRank::kFirstError};
  Status first_error;
  {
    const std::vector<uint32_t> keys = buffers.CollectKeys();
    WorkCounter key_counter(keys.size());
    pool->Run([&](int) {
      std::vector<LeafEntry> gathered;
      size_t item;
      while (key_counter.NextItem(&item)) {
        const uint32_t key = keys[item];
        gathered.clear();
        buffers.Gather(key, &gathered);
        Node* root = base->GetOrCreateRoot(key);
        for (const LeafEntry& e : gathered) {
          const Status st = base->InsertIntoSubtree(root, e, nullptr);
          if (!st.ok()) {
            MutexLock lock(&error_mu);
            if (first_error.ok()) first_error = st;
            return;
          }
        }
      }
    });
  }
  PARISAX_RETURN_IF_ERROR(first_error);
  index->build_stats_.tree_wall_seconds = tree_timer.ElapsedSeconds();

  base->SealRoots();
  index->build_stats_.tree = base->Collect();
  index->build_stats_.wall_seconds = wall.ElapsedSeconds();
  if (index->build_stats_.tree.total_entries != total_series) {
    return Status::Internal("MESSI build lost series");
  }

  auto state = std::make_shared<ServingState>();
  state->base = std::move(base);
  state->base_count = total_series;
  state->raw = raw;
  state->count = total_series;
  index->dock_.Publish(std::move(state));
  return index;
}

Status MessiIndex::Append(const Value* values, size_t count,
                          Executor* exec,
                          std::vector<uint32_t>* touched_roots) {
  if (touched_roots != nullptr) touched_roots->clear();
  if (count == 0) return Status::OK();
  const SeriesId first = dock_.get()->count;

  // Grow the source first (the source retires — never frees — the
  // buffers behind published raw views), then build the segment from
  // the caller's values and publish both in one atomic step. Queries
  // keep whichever snapshot they captured.
  PARISAX_RETURN_IF_ERROR(source_->AppendSeries(values, count));
  std::shared_ptr<const Segment> segment;
  PARISAX_ASSIGN_OR_RETURN(
      segment, BuildSegment(values, count, first, tree_options_,
                            /*with_sax_rows=*/false, exec));
  if (touched_roots != nullptr) {
    *touched_roots = segment->tree.PresentRoots();
  }
  dock_.PublishAppend(std::move(segment),
                      RawDataView{source_->ContiguousData(),
                                  tree_options_.series_length},
                      source_->count());
  // O(batch) bookkeeping: only total_entries is maintained
  // incrementally; the other shape stats reflect the last full build.
  build_stats_.tree.total_entries += count;
#ifndef NDEBUG
  {
    const auto snap = dock_.get();
    size_t total = snap->base->Collect().total_entries;
    for (const auto& seg : snap->segments) {
      total += seg->tree.Collect().total_entries;
    }
    assert(total == snap->count);
  }
#endif
  return Status::OK();
}

Result<bool> MessiIndex::FoldSegments(
    const std::shared_ptr<const ServingState>& snap, size_t folded,
    Executor* exec) {
  if (folded == 0) return true;
  if (folded > snap->segments.size()) {
    return Status::InvalidArgument("fold count exceeds the segment list");
  }
  std::vector<LeafEntry> entries;
  PARISAX_RETURN_IF_ERROR(
      CollectTreeEntries(*snap->base, /*storage=*/nullptr, &entries));
  size_t new_base_count = snap->base_count;
  for (size_t i = 0; i < folded; ++i) {
    PARISAX_RETURN_IF_ERROR(CollectTreeEntries(snap->segments[i]->tree,
                                               /*storage=*/nullptr,
                                               &entries));
    new_base_count += snap->segments[i]->count;
  }
  auto base = std::make_shared<SaxTree>(tree_options_);
  PARISAX_RETURN_IF_ERROR(BuildTreeFromEntries(base.get(), entries, exec));
  if (base->Collect().total_entries != new_base_count) {
    return Status::Internal("MESSI fold lost series");
  }
  return dock_.TryFold(snap, folded, std::move(base), /*cache=*/nullptr,
                       new_base_count);
}

Result<bool> MessiIndex::MergeSegmentRun(
    const std::shared_ptr<const ServingState>& snap, size_t folded,
    Executor* exec) {
  if (folded < 2 || folded > snap->segments.size()) {
    return Status::InvalidArgument("merge run out of range");
  }
  const std::vector<std::shared_ptr<const Segment>> parts(
      snap->segments.begin(), snap->segments.begin() + folded);
  std::shared_ptr<const Segment> merged;
  PARISAX_ASSIGN_OR_RETURN(merged,
                           MergeSegments(parts, tree_options_, exec));
  return dock_.TryMergeSegments(snap, folded, std::move(merged));
}

Result<Neighbor> MessiIndex::SearchApproximate(SeriesView query,
                                               QueryStats* stats) const {
  if (query.size() != tree_options_.series_length) {
    return Status::InvalidArgument("query length does not match the index");
  }
  WallTimer timer;
  const auto snap = dock_.get();
  const int w = tree_options_.segments;
  float paa[kMaxSegments];
  ComputePaa(query, w, paa);
  SaxSymbols sax;
  SymbolsFromPaa(paa, w, &sax);
  auto result =
      ProbeAllTrees(*snap, query, paa, sax, KernelPolicy::kAuto, stats);
  if (stats != nullptr) stats->total_seconds = timer.ElapsedSeconds();
  return result;
}

Result<Neighbor> MessiIndex::SearchExact(SeriesView query,
                                         const MessiQueryOptions& options,
                                         Executor* exec,
                                         QueryStats* stats) const {
  if (query.size() != tree_options_.series_length) {
    return Status::InvalidArgument("query length does not match the index");
  }
  WallTimer total;
  const auto snap = dock_.get();
  const int w = tree_options_.segments;
  const size_t n = tree_options_.series_length;
  float paa[kMaxSegments];
  ComputePaa(query, w, paa);
  SaxSymbols sax;
  SymbolsFromPaa(paa, w, &sax);

  WallTimer approx_timer;
  Neighbor seed;
  PARISAX_ASSIGN_OR_RETURN(
      seed, ProbeAllTrees(*snap, query, paa, sax, options.kernel, stats));
  if (stats != nullptr) {
    stats->approx_phase_seconds = approx_timer.ElapsedSeconds();
  }

  BestNeighbor result(seed, options.shared_bound);
  EdNnPolicy policy{snap->raw, paa, w, n, options.kernel, query, &result};
  AtomicCounters counters;
  const int num_queues =
      options.num_queues > 0 ? options.num_queues : options.num_workers;
  const std::vector<Node*> roots = CollectRoots(*snap);
  RunQueuedSearch(roots, &policy, num_queues, exec, &counters,
                  options.cancel);
  counters.FlushInto(stats);
  if (stats != nullptr) stats->total_seconds = total.ElapsedSeconds();
  if (Expired(options.cancel)) {
    return Status::DeadlineExceeded("query deadline expired mid-search");
  }
  return result.Take();
}

Result<std::vector<Neighbor>> MessiIndex::SearchKnn(
    SeriesView query, size_t k, const MessiQueryOptions& options,
    Executor* exec, QueryStats* stats) const {
  if (query.size() != tree_options_.series_length) {
    return Status::InvalidArgument("query length does not match the index");
  }
  if (k == 0) return Status::InvalidArgument("k must be positive");
  WallTimer total;
  const auto snap = dock_.get();
  const int w = tree_options_.segments;
  const size_t n = tree_options_.series_length;
  float paa[kMaxSegments];
  ComputePaa(query, w, paa);
  SaxSymbols sax;
  SymbolsFromPaa(paa, w, &sax);

  // Seed the heap with every entry of the approximate-match leaf of the
  // base and of each segment.
  KnnHeap heap(k);
  auto seed_from = [&](const SaxTree& tree) {
    Node* leaf = tree.ApproximateLeaf(sax, paa);
    if (leaf == nullptr) return;
    for (const LeafEntry& e : leaf->entries()) {
      const float d = SquaredEuclidean(query, snap->raw.series(e.id),
                                       options.kernel);
      if (stats != nullptr) stats->real_dist_calcs++;
      heap.Update(Neighbor{e.id, d});
    }
  };
  seed_from(*snap->base);
  for (const auto& seg : snap->segments) seed_from(seg->tree);
  if (options.shared_bound != nullptr) {
    options.shared_bound->UpdateMin(heap.Bound());
  }

  EdKnnPolicy policy{snap->raw, paa,   w,     n,
                     options.kernel, query, &heap, options.shared_bound};
  AtomicCounters counters;
  const int num_queues =
      options.num_queues > 0 ? options.num_queues : options.num_workers;
  const std::vector<Node*> roots = CollectRoots(*snap);
  RunQueuedSearch(roots, &policy, num_queues, exec, &counters,
                  options.cancel);
  counters.FlushInto(stats);
  if (stats != nullptr) stats->total_seconds = total.ElapsedSeconds();
  if (Expired(options.cancel)) {
    return Status::DeadlineExceeded("query deadline expired mid-search");
  }
  return heap.Sorted();
}

Result<Neighbor> MessiIndex::SearchExactDtw(SeriesView query,
                                            const MessiQueryOptions& options,
                                            Executor* exec,
                                            QueryStats* stats) const {
  if (query.size() != tree_options_.series_length) {
    return Status::InvalidArgument("query length does not match the index");
  }
  WallTimer total;
  const auto snap = dock_.get();
  const int w = tree_options_.segments;
  const size_t n = tree_options_.series_length;

  std::vector<Value> env_lower, env_upper;
  ComputeEnvelope(query, options.dtw_band, &env_lower, &env_upper);
  float env_lower_paa[kMaxSegments], env_upper_paa[kMaxSegments];
  ComputeEnvelopePaaMinMax(env_lower, env_upper, w, env_lower_paa,
                           env_upper_paa);

  float paa[kMaxSegments];
  ComputePaa(query, w, paa);
  SaxSymbols sax;
  SymbolsFromPaa(paa, w, &sax);

  // Per-query DP arenas, one per executor worker: concurrent DTW
  // queries each own their scratch instead of funneling through shared
  // thread_local rows.
  std::vector<DtwScratch> scratches(exec->num_threads());

  // Approximate phase: true DTW against each tree's matching leaf.
  Neighbor seed{0, kInf};
  auto seed_from = [&](const SaxTree& tree) {
    Node* leaf = tree.ApproximateLeaf(sax, paa);
    if (leaf == nullptr) return;
    for (const LeafEntry& e : leaf->entries()) {
      const float d = DtwBand(query, snap->raw.series(e.id),
                              options.dtw_band, seed.distance_sq,
                              &scratches[0]);
      if (stats != nullptr) stats->real_dist_calcs++;
      if (d < seed.distance_sq ||
          (d == seed.distance_sq && e.id < seed.id)) {
        seed = Neighbor{e.id, d};
      }
    }
  };
  seed_from(*snap->base);
  for (const auto& seg : snap->segments) seed_from(seg->tree);

  BestNeighbor result(seed, options.shared_bound);
  DtwNnPolicy policy{snap->raw,       env_lower_paa, env_upper_paa,
                     &env_lower,      &env_upper,    w,
                     n,               options.dtw_band, query,
                     &result,         &scratches};
  AtomicCounters counters;
  const int num_queues =
      options.num_queues > 0 ? options.num_queues : options.num_workers;
  const std::vector<Node*> roots = CollectRoots(*snap);
  RunQueuedSearch(roots, &policy, num_queues, exec, &counters,
                  options.cancel);
  counters.FlushInto(stats);
  if (stats != nullptr) stats->total_seconds = total.ElapsedSeconds();
  if (Expired(options.cancel)) {
    return Status::DeadlineExceeded("query deadline expired mid-search");
  }
  return result.Take();
}

}  // namespace parisax
