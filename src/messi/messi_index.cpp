#include "messi/messi_index.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <limits>
#include <mutex>
#include <queue>
#include <utility>

#include "dist/dtw.h"
#include "index/approx_search.h"
#include "index/ingest.h"
#include "index/knn_heap.h"
#include "messi/isax_buffers.h"
#include "sax/mindist.h"
#include "sax/paa.h"
#include "util/timer.h"

namespace parisax {

namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();

struct QueueItem {
  float lb = 0.0f;
  Node* leaf = nullptr;
};

struct QueueItemGreater {
  bool operator()(const QueueItem& a, const QueueItem& b) const {
    return a.lb > b.lb;
  }
};

/// One of the K shared minimum priority queues of Stage 3.
struct SharedQueue {
  std::mutex mu;
  std::priority_queue<QueueItem, std::vector<QueueItem>, QueueItemGreater> pq;
  bool done = false;  // guarded by mu
};

struct AtomicCounters {
  std::atomic<uint64_t> lb_checks{0};
  std::atomic<uint64_t> real_dist_calcs{0};
  std::atomic<uint64_t> nodes_visited{0};
  std::atomic<uint64_t> leaves_inspected{0};
  std::atomic<uint64_t> queue_abandons{0};

  void FlushInto(QueryStats* stats) const {
    if (stats == nullptr) return;
    stats->lb_checks += lb_checks.load();
    stats->real_dist_calcs += real_dist_calcs.load();
    stats->nodes_visited += nodes_visited.load();
    stats->leaves_inspected += leaves_inspected.load();
    stats->queue_abandons += queue_abandons.load();
  }
};

/// Tree traversal + priority-queue consumption shared by the ED-NN,
/// ED-kNN and DTW-NN searches. `Policy` supplies the pruning bound, the
/// node/entry lower bounds and the entry refinement:
///   float Bound() const;
///   float NodeLb(const Node&) const;
///   void ProcessEntry(const LeafEntry&, AtomicCounters*, int worker);
/// Everything mutable lives in the policy or on this stack frame, so any
/// number of queued searches can run concurrently on different
/// executors.
template <typename Policy>
void RunQueuedSearch(const SaxTree& tree, Policy* policy, int num_queues,
                     Executor* exec, AtomicCounters* counters) {
  std::vector<SharedQueue> queues(num_queues);
  std::atomic<uint64_t> round_robin{0};

  // Stage 3a: parallel traversal, leaves into queues (round-robin for
  // load balance, as in the paper).
  const auto& roots = tree.PresentRoots();
  WorkCounter root_counter(roots.size());
  exec->Run([&](int) {
    std::vector<Node*> stack;
    size_t item;
    while (root_counter.NextItem(&item)) {
      stack.push_back(tree.RootAt(roots[item]));
      while (!stack.empty()) {
        Node* node = stack.back();
        stack.pop_back();
        counters->nodes_visited.fetch_add(1, std::memory_order_relaxed);
        const float lb = policy->NodeLb(*node);
        if (lb >= policy->Bound()) continue;  // prune the whole subtree
        if (node->IsLeaf()) {
          if (node->entries().empty()) continue;
          const uint64_t slot =
              round_robin.fetch_add(1, std::memory_order_relaxed);
          SharedQueue& q = queues[slot % queues.size()];
          std::lock_guard<std::mutex> lock(q.mu);
          q.pq.push(QueueItem{lb, node});
        } else {
          stack.push_back(node->child(0));
          stack.push_back(node->child(1));
        }
      }
    }
  });

  // Stage 3b: workers consume the queues; a queue whose minimum exceeds
  // the BSF is abandoned wholesale (everything below it is farther).
  std::atomic<uint64_t> start_counter{0};
  exec->Run([&](int worker) {
    const int k_queues = static_cast<int>(queues.size());
    const int start = static_cast<int>(
        start_counter.fetch_add(1, std::memory_order_relaxed) %
        static_cast<uint64_t>(k_queues));
    for (;;) {
      bool all_done = true;
      for (int offset = 0; offset < k_queues; ++offset) {
        SharedQueue& q = queues[(start + offset) % k_queues];
        for (;;) {
          QueueItem item;
          {
            std::lock_guard<std::mutex> lock(q.mu);
            if (q.done) break;
            if (q.pq.empty()) {
              q.done = true;
              break;
            }
            item = q.pq.top();
            if (item.lb >= policy->Bound()) {
              q.done = true;
              counters->queue_abandons.fetch_add(1,
                                                 std::memory_order_relaxed);
              break;
            }
            q.pq.pop();
          }
          all_done = false;
          counters->leaves_inspected.fetch_add(1, std::memory_order_relaxed);
          for (const LeafEntry& e : item.leaf->entries()) {
            policy->ProcessEntry(e, counters, worker);
          }
        }
      }
      if (all_done) return;
    }
  });
}

/// Thread-safe single best neighbor (1-NN result set).
struct BestNeighbor {
  explicit BestNeighbor(Neighbor seed) : bsf(seed.distance_sq), best(seed) {}

  float Bound() const { return bsf.Load(); }

  void Offer(SeriesId id, float d) {
    if (!bsf.UpdateMin(d) && d > bsf.Load()) return;
    std::lock_guard<std::mutex> lock(mu);
    if (d < best.distance_sq || (d == best.distance_sq && id < best.id)) {
      best = Neighbor{id, d};
    }
  }

  AtomicMinFloat bsf;
  std::mutex mu;
  Neighbor best;
};

/// Exact-ED 1-NN policy.
struct EdNnPolicy {
  RawDataView raw;
  const float* paa;
  int w;
  size_t n;
  KernelPolicy kernel;
  SeriesView query;
  BestNeighbor* result;

  float Bound() const { return result->Bound(); }

  float NodeLb(const Node& node) const {
    return MinDistPaaToWordSq(paa, node.word(), w, n);
  }

  void ProcessEntry(const LeafEntry& e, AtomicCounters* counters,
                    int /*worker*/) {
    counters->lb_checks.fetch_add(1, std::memory_order_relaxed);
    const float bound = Bound();
    if (MinDistPaaToSymbolsSq(paa, e.sax, w, n) >= bound) return;
    counters->real_dist_calcs.fetch_add(1, std::memory_order_relaxed);
    const float d = SquaredEuclideanEarlyAbandon(query, raw.series(e.id),
                                                 bound, kernel);
    if (d < bound) result->Offer(e.id, d);
  }
};

/// Exact-ED kNN policy: the bound is the k-th best distance.
struct EdKnnPolicy {
  RawDataView raw;
  const float* paa;
  int w;
  size_t n;
  KernelPolicy kernel;
  SeriesView query;
  KnnHeap* heap;

  float Bound() const { return heap->Bound(); }

  float NodeLb(const Node& node) const {
    return MinDistPaaToWordSq(paa, node.word(), w, n);
  }

  void ProcessEntry(const LeafEntry& e, AtomicCounters* counters,
                    int /*worker*/) {
    counters->lb_checks.fetch_add(1, std::memory_order_relaxed);
    const float bound = Bound();
    if (MinDistPaaToSymbolsSq(paa, e.sax, w, n) >= bound) return;
    counters->real_dist_calcs.fetch_add(1, std::memory_order_relaxed);
    const float d = SquaredEuclideanEarlyAbandon(query, raw.series(e.id),
                                                 bound, kernel);
    if (d < bound) heap->Update(Neighbor{e.id, d});
  }
};

/// Exact-DTW 1-NN policy: envelope-based lower bounds cascade into
/// LB_Keogh and finally early-abandoning banded DTW.
struct DtwNnPolicy {
  RawDataView raw;
  const float* env_lower_paa;
  const float* env_upper_paa;
  const std::vector<Value>* env_lower;
  const std::vector<Value>* env_upper;
  int w;
  size_t n;
  size_t band;
  SeriesView query;
  BestNeighbor* result;
  /// Per-worker DP arenas owned by the query (one per executor worker),
  /// so concurrent DTW queries never share scratch state.
  std::vector<DtwScratch>* scratches;

  float Bound() const { return result->Bound(); }

  float NodeLb(const Node& node) const {
    return MinDistEnvelopePaaToWordSq(env_lower_paa, env_upper_paa,
                                      node.word(), w, n);
  }

  void ProcessEntry(const LeafEntry& e, AtomicCounters* counters,
                    int worker) {
    counters->lb_checks.fetch_add(1, std::memory_order_relaxed);
    float bound = Bound();
    if (MinDistEnvelopePaaToSymbolsSq(env_lower_paa, env_upper_paa, e.sax, w,
                                      n) >= bound) {
      return;
    }
    const SeriesView candidate = raw.series(e.id);
    if (LbKeoghSq(*env_lower, *env_upper, candidate, bound) >= bound) return;
    counters->real_dist_calcs.fetch_add(1, std::memory_order_relaxed);
    bound = Bound();
    const float d =
        DtwBand(query, candidate, band, bound, &(*scratches)[worker]);
    if (d < bound) result->Offer(e.id, d);
  }
};

}  // namespace

Status MessiIndex::AttachSource(std::unique_ptr<RawSeriesSource> source) {
  if (source->length() != tree_.options().series_length) {
    return Status::InvalidArgument(
        "raw source length does not match the index");
  }
  const Value* base = source->ContiguousData();
  if (base == nullptr && source->count() > 0) {
    return Status::NotSupported(
        "MESSI requires a directly addressable raw source (in-memory or "
        "mmap)");
  }
  source_ = std::move(source);
  raw_ = RawDataView{base, source_->length()};
  return Status::OK();
}

Result<std::unique_ptr<MessiIndex>> MessiIndex::Build(
    std::unique_ptr<RawSeriesSource> source,
    const MessiBuildOptions& options, ThreadPool* pool) {
  if (source == nullptr) {
    return Status::InvalidArgument("source must not be null");
  }
  if (source->length() != options.tree.series_length) {
    return Status::InvalidArgument(
        "tree.series_length does not match the source");
  }
  if (pool->num_threads() < options.num_workers) {
    return Status::InvalidArgument(
        "thread pool is smaller than num_workers");
  }
  WallTimer wall;
  auto index = std::unique_ptr<MessiIndex>(new MessiIndex(options.tree));
  const size_t total_series = source->count();
  PARISAX_RETURN_IF_ERROR(index->AttachSource(std::move(source)));
  // Stage 1 reads through the hot-path view, so an mmap-backed source is
  // summarized straight off the page cache (no in-RAM copy).
  const RawDataView raw = index->raw_;
  const int w = options.tree.segments;

  IsaxBufferSet buffers(w, pool->num_threads(), options.locked_buffers);

  // Stage 1: summarization into the iSAX buffers, chunks by Fetch&Inc.
  WallTimer summarize_timer;
  {
    WorkCounter chunks(total_series);
    pool->Run([&](int worker) {
      float paa[kMaxSegments];
      size_t begin, end;
      while (chunks.NextBatch(options.chunk_series, &begin, &end)) {
        for (SeriesId i = begin; i < end; ++i) {
          ComputePaa(raw.series(i), w, paa);
          LeafEntry entry;
          entry.id = i;
          SymbolsFromPaa(paa, w, &entry.sax);
          buffers.Append(worker, RootKey(entry.sax, w), entry);
        }
      }
    });
  }
  index->build_stats_.summarize_wall_seconds =
      summarize_timer.ElapsedSeconds();

  // Stage 2: each worker builds whole root subtrees, claimed by
  // Fetch&Inc; no synchronization inside a subtree.
  WallTimer tree_timer;
  std::mutex error_mu;
  Status first_error;
  {
    const std::vector<uint32_t> keys = buffers.CollectKeys();
    WorkCounter key_counter(keys.size());
    pool->Run([&](int) {
      std::vector<LeafEntry> gathered;
      size_t item;
      while (key_counter.NextItem(&item)) {
        const uint32_t key = keys[item];
        gathered.clear();
        buffers.Gather(key, &gathered);
        Node* root = index->tree_.GetOrCreateRoot(key);
        for (const LeafEntry& e : gathered) {
          const Status st = index->tree_.InsertIntoSubtree(root, e, nullptr);
          if (!st.ok()) {
            std::lock_guard<std::mutex> lock(error_mu);
            if (first_error.ok()) first_error = st;
            return;
          }
        }
      }
    });
  }
  PARISAX_RETURN_IF_ERROR(first_error);
  index->build_stats_.tree_wall_seconds = tree_timer.ElapsedSeconds();

  index->tree_.SealRoots();
  index->build_stats_.tree = index->tree_.Collect();
  index->build_stats_.wall_seconds = wall.ElapsedSeconds();
  if (index->build_stats_.tree.total_entries != total_series) {
    return Status::Internal("MESSI build lost series");
  }
  return index;
}

Status MessiIndex::Append(const Value* values, size_t count,
                          ThreadPool* pool,
                          std::vector<uint32_t>* touched_roots) {
  if (touched_roots != nullptr) touched_roots->clear();
  if (count == 0) return Status::OK();
  const SeriesId first = source_->count();

  PARISAX_RETURN_IF_ERROR(source_->AppendSeries(values, count));
  // The grown source may have reallocated; re-point the hot-path view.
  raw_ = RawDataView{source_->ContiguousData(),
                     tree_.options().series_length};

  PARISAX_RETURN_IF_ERROR(AppendTailToTree(&tree_, values, count, first,
                                           pool, /*storage=*/nullptr,
                                           /*cache=*/nullptr,
                                           touched_roots));
  // O(batch) bookkeeping: a full tree_.Collect() walk per append would
  // make ingest O(index size) while queries are gated out. Only
  // total_entries is maintained incrementally; the other shape stats
  // reflect the last full build (debug builds still verify the count
  // against a real walk).
  build_stats_.tree.total_entries += count;
  assert(tree_.Collect().total_entries == source_->count());
  return Status::OK();
}

Result<Neighbor> MessiIndex::SearchApproximate(SeriesView query,
                                               QueryStats* stats) const {
  if (query.size() != tree_.options().series_length) {
    return Status::InvalidArgument("query length does not match the index");
  }
  WallTimer timer;
  const int w = tree_.options().segments;
  float paa[kMaxSegments];
  ComputePaa(query, w, paa);
  SaxSymbols sax;
  SymbolsFromPaa(paa, w, &sax);
  auto result = ApproximateLeafSearch(tree_, nullptr, *source_, query, paa,
                                      sax, KernelPolicy::kAuto, stats);
  if (stats != nullptr) stats->total_seconds = timer.ElapsedSeconds();
  return result;
}

Result<Neighbor> MessiIndex::SearchExact(SeriesView query,
                                         const MessiQueryOptions& options,
                                         Executor* exec,
                                         QueryStats* stats) const {
  if (query.size() != tree_.options().series_length) {
    return Status::InvalidArgument("query length does not match the index");
  }
  WallTimer total;
  const int w = tree_.options().segments;
  const size_t n = tree_.options().series_length;
  float paa[kMaxSegments];
  ComputePaa(query, w, paa);
  SaxSymbols sax;
  SymbolsFromPaa(paa, w, &sax);

  WallTimer approx_timer;
  Neighbor seed;
  PARISAX_ASSIGN_OR_RETURN(
      seed, ApproximateLeafSearch(tree_, nullptr, *source_, query, paa, sax,
                                  options.kernel, stats));
  if (stats != nullptr) {
    stats->approx_phase_seconds = approx_timer.ElapsedSeconds();
  }

  BestNeighbor result(seed);
  EdNnPolicy policy{raw_, paa, w, n, options.kernel, query, &result};
  AtomicCounters counters;
  const int num_queues =
      options.num_queues > 0 ? options.num_queues : options.num_workers;
  RunQueuedSearch(tree_, &policy, num_queues, exec, &counters);
  counters.FlushInto(stats);
  if (stats != nullptr) stats->total_seconds = total.ElapsedSeconds();
  return result.best;
}

Result<std::vector<Neighbor>> MessiIndex::SearchKnn(
    SeriesView query, size_t k, const MessiQueryOptions& options,
    Executor* exec, QueryStats* stats) const {
  if (query.size() != tree_.options().series_length) {
    return Status::InvalidArgument("query length does not match the index");
  }
  if (k == 0) return Status::InvalidArgument("k must be positive");
  WallTimer total;
  const int w = tree_.options().segments;
  const size_t n = tree_.options().series_length;
  float paa[kMaxSegments];
  ComputePaa(query, w, paa);
  SaxSymbols sax;
  SymbolsFromPaa(paa, w, &sax);

  // Seed the heap with every entry of the approximate-match leaf.
  KnnHeap heap(k);
  Node* leaf = tree_.ApproximateLeaf(sax, paa);
  if (leaf != nullptr) {
    for (const LeafEntry& e : leaf->entries()) {
      const float d = SquaredEuclidean(query, raw_.series(e.id),
                                       options.kernel);
      if (stats != nullptr) stats->real_dist_calcs++;
      heap.Update(Neighbor{e.id, d});
    }
  }

  EdKnnPolicy policy{raw_, paa, w, n, options.kernel, query, &heap};
  AtomicCounters counters;
  const int num_queues =
      options.num_queues > 0 ? options.num_queues : options.num_workers;
  RunQueuedSearch(tree_, &policy, num_queues, exec, &counters);
  counters.FlushInto(stats);
  if (stats != nullptr) stats->total_seconds = total.ElapsedSeconds();
  return heap.Sorted();
}

Result<Neighbor> MessiIndex::SearchExactDtw(SeriesView query,
                                            const MessiQueryOptions& options,
                                            Executor* exec,
                                            QueryStats* stats) const {
  if (query.size() != tree_.options().series_length) {
    return Status::InvalidArgument("query length does not match the index");
  }
  WallTimer total;
  const int w = tree_.options().segments;
  const size_t n = tree_.options().series_length;

  std::vector<Value> env_lower, env_upper;
  ComputeEnvelope(query, options.dtw_band, &env_lower, &env_upper);
  float env_lower_paa[kMaxSegments], env_upper_paa[kMaxSegments];
  ComputeEnvelopePaaMinMax(env_lower, env_upper, w, env_lower_paa,
                           env_upper_paa);

  float paa[kMaxSegments];
  ComputePaa(query, w, paa);
  SaxSymbols sax;
  SymbolsFromPaa(paa, w, &sax);

  // Per-query DP arenas, one per executor worker: concurrent DTW
  // queries each own their scratch instead of funneling through shared
  // thread_local rows.
  std::vector<DtwScratch> scratches(exec->num_threads());

  // Approximate phase: true DTW against the matching leaf's series.
  Neighbor seed{0, kInf};
  Node* leaf = tree_.ApproximateLeaf(sax, paa);
  if (leaf != nullptr) {
    for (const LeafEntry& e : leaf->entries()) {
      const float d = DtwBand(query, raw_.series(e.id),
                              options.dtw_band, seed.distance_sq,
                              &scratches[0]);
      if (stats != nullptr) stats->real_dist_calcs++;
      if (d < seed.distance_sq ||
          (d == seed.distance_sq && e.id < seed.id)) {
        seed = Neighbor{e.id, d};
      }
    }
  }

  BestNeighbor result(seed);
  DtwNnPolicy policy{raw_,            env_lower_paa, env_upper_paa,
                     &env_lower,      &env_upper,    w,
                     n,               options.dtw_band, query,
                     &result,         &scratches};
  AtomicCounters counters;
  const int num_queues =
      options.num_queues > 0 ? options.num_queues : options.num_workers;
  RunQueuedSearch(tree_, &policy, num_queues, exec, &counters);
  counters.FlushInto(stats);
  if (stats != nullptr) stats->total_seconds = total.ElapsedSeconds();
  return result.best;
}

}  // namespace parisax
