#include "core/search_backend.h"

#include "io/dataset.h"
#include "serve/query_service.h"

namespace parisax {

const char* SchedulingPolicyName(SchedulingPolicy policy) {
  switch (policy) {
    case SchedulingPolicy::kThroughput:
      return "throughput";
    case SchedulingPolicy::kLatency:
      return "latency";
    case SchedulingPolicy::kAuto:
      return "auto";
  }
  return "unknown";
}

Result<SchedulingPolicy> ParseSchedulingPolicy(const std::string& name) {
  if (name == "throughput") return SchedulingPolicy::kThroughput;
  if (name == "latency") return SchedulingPolicy::kLatency;
  if (name == "auto") return SchedulingPolicy::kAuto;
  return Status::InvalidArgument("unknown scheduling policy: " + name);
}

Status CheckRequestAgainstCapabilities(const EngineCapabilities& caps,
                                       size_t series_length,
                                       const char* algorithm_name,
                                       SeriesView query,
                                       const SearchRequest& request) {
  const std::string name(algorithm_name);
  if (query.size() != series_length) {
    return Status::InvalidArgument("query length does not match the data");
  }
  if (request.k == 0) return Status::InvalidArgument("k must be positive");
  if (request.k > 1 && request.dtw && !caps.dtw_knn) {
    return Status::NotSupported(name + " does not support k > 1 under DTW");
  }
  if (request.k > caps.max_k) {
    return Status::NotSupported(name + " supports k <= " +
                                std::to_string(caps.max_k) +
                                " (capabilities().max_k)");
  }
  if (request.dtw && !caps.dtw) {
    return Status::NotSupported(
        name +
        " does not support DTW search over this source "
        "(capabilities().dtw is false)");
  }
  if (request.approximate && !caps.approximate) {
    return Status::NotSupported(
        name +
        " does not support approximate search (capabilities().approximate "
        "is false)");
  }
  return Status::OK();
}

std::future<Result<SearchResponse>> SearchBackend::Submit(
    SeriesView query, const SearchRequest& request) {
  return query_service()->Submit(query, request);
}

Result<std::future<Result<SearchResponse>>> SearchBackend::TrySubmit(
    SeriesView query, const SearchRequest& request,
    const SubmitOptions& submit) {
  return query_service()->TrySubmit(query, request, submit);
}

Result<std::vector<SearchResponse>> SearchBackend::SearchBatch(
    const std::vector<SeriesView>& queries, const SearchRequest& request) {
  return query_service()->SearchBatch(queries, request);
}

Result<AppendReport> SearchBackend::Append(const Dataset& batch) {
  if (batch.count() > 0 && batch.length() != series_length()) {
    return Status::InvalidArgument(
        "appended series length does not match the collection");
  }
  return Append(batch.raw(), batch.count());
}

}  // namespace parisax
