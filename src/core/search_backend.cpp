#include "core/search_backend.h"

#include "io/dataset.h"
#include "serve/query_service.h"

namespace parisax {

const char* SchedulingPolicyName(SchedulingPolicy policy) {
  switch (policy) {
    case SchedulingPolicy::kThroughput:
      return "throughput";
    case SchedulingPolicy::kLatency:
      return "latency";
    case SchedulingPolicy::kAuto:
      return "auto";
  }
  return "unknown";
}

Result<SchedulingPolicy> ParseSchedulingPolicy(const std::string& name) {
  if (name == "throughput") return SchedulingPolicy::kThroughput;
  if (name == "latency") return SchedulingPolicy::kLatency;
  if (name == "auto") return SchedulingPolicy::kAuto;
  return Status::InvalidArgument("unknown scheduling policy: " + name);
}

std::future<Result<SearchResponse>> SearchBackend::Submit(
    SeriesView query, const SearchRequest& request) {
  return query_service()->Submit(query, request);
}

Result<std::future<Result<SearchResponse>>> SearchBackend::TrySubmit(
    SeriesView query, const SearchRequest& request,
    const SubmitOptions& submit) {
  return query_service()->TrySubmit(query, request, submit);
}

Result<std::vector<SearchResponse>> SearchBackend::SearchBatch(
    const std::vector<SeriesView>& queries, const SearchRequest& request) {
  return query_service()->SearchBatch(queries, request);
}

Result<AppendReport> SearchBackend::Append(const Dataset& batch) {
  if (batch.count() > 0 && batch.length() != series_length()) {
    return Status::InvalidArgument(
        "appended series length does not match the collection");
  }
  return Append(batch.raw(), batch.count());
}

}  // namespace parisax
