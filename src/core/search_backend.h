// The abstract serving surface every similarity-search backend
// implements.
//
// A SearchBackend answers queries, accepts appends and persists itself;
// Engine (one algorithm over one source) and ShardedEngine (N engines
// behind a query router, src/shard/) both implement it. The serve and
// net layers — QueryService, src/net/Server, parisax_server — are
// written against this interface only, so sharding (or any future
// backend) is invisible to the wire protocol, scheduling and metrics.
//
// The request/response/capability types live here rather than in
// engine.h so the serve layer can be compiled against the interface
// alone; engine.h re-exports them by including this header.
#ifndef PARISAX_CORE_SEARCH_BACKEND_H_
#define PARISAX_CORE_SEARCH_BACKEND_H_

#include <cstddef>
#include <cstdint>
#include <future>
#include <string>
#include <vector>

#include "core/types.h"
#include "index/query_stats.h"
#include "util/cancellation.h"
#include "util/status.h"
#include "util/threading.h"

namespace parisax {

class Dataset;
class QueryService;
struct SubmitOptions;

/// How the serve layer schedules concurrent queries over the shared
/// worker pool (see serve/query_service.h).
enum class SchedulingPolicy {
  /// Whole-query-per-worker: each query runs serially on one serve
  /// worker, many queries in flight at once. Maximizes queries/sec.
  kThroughput,
  /// Every query fans out over the full thread pool (the paper's
  /// intra-query parallelism); queries are serialized on the pool.
  /// Minimizes single-query latency.
  kLatency,
  /// Per-query choice by a cost heuristic: expensive queries take the
  /// parallel path when the service is otherwise idle, everything else
  /// runs whole-query-per-worker.
  kAuto,
};

/// Short lowercase name ("throughput", "latency", "auto").
const char* SchedulingPolicyName(SchedulingPolicy policy);

/// Parses a name produced by SchedulingPolicyName.
Result<SchedulingPolicy> ParseSchedulingPolicy(const std::string& name);

/// What a backend can do. For Engine this is one static table per
/// algorithm (see AlgorithmCapabilities), narrowed per instance by the
/// source it was built over (Engine::capabilities); for ShardedEngine
/// it is the intersection across shards. CheckQuery, Save and Build
/// derive every typed kNotSupported rejection from this struct -- there
/// are no per-call-site whitelists.
struct EngineCapabilities {
  /// Largest supported k for exact kNN searches (1: only 1-NN).
  size_t max_k = 1;
  /// Exact search under banded DTW.
  bool dtw = false;
  /// k > 1 under DTW (currently unimplemented everywhere).
  bool dtw_knn = false;
  /// Approximate (leaf-probe) search.
  bool approximate = false;
  /// Engine::Save / Engine::Open snapshot support.
  bool snapshot = false;
  /// Can build from a streamed, non-addressable source (the paper's
  /// on-disk pipeline). Every algorithm builds over addressable
  /// (in-memory or mmap) sources.
  bool streaming_build = false;
  /// Engine::Append incremental ingest: new series are added to the
  /// owned source and indexed without rebuilding. Narrowed to false
  /// when the source cannot grow (a borrowed collection).
  bool append = false;
  /// A background compactor folds delta segments back into the base
  /// index off the serving path (see EngineOptions). Narrowed to false
  /// when append is unavailable or the source is not addressable —
  /// streamed engines fold synchronously in Save/Compact instead.
  bool background_compaction = false;
};

struct SearchRequest {
  /// Number of nearest neighbors (bounded by capabilities().max_k).
  size_t k = 1;
  /// Return the approximate answer (index engines only): the best match
  /// within the query's approximate-match leaf.
  bool approximate = false;
  /// Search under banded DTW instead of ED (capabilities().dtw).
  bool dtw = false;
  /// Sakoe-Chiba radius in points for DTW searches.
  size_t dtw_band = 12;
  /// Optional cancel/deadline token, owned by the caller and kept alive
  /// for the whole search. The index engines (MESSI, ParIS/ParIS+) poll
  /// it at leaf-visit / batch granularity inside their hot loops and the
  /// search returns kDeadlineExceeded instead of a partial answer; the
  /// scan engines and ADS+ only check it on entry. Null: never expires.
  const CancellationToken* cancel = nullptr;
  /// Optional cross-search pruning bound, owned by the caller and kept
  /// alive for the whole search. When set, the index engines fold its
  /// value into their best-so-far bound (min with the local BSF / kth
  /// kNN bound) and publish their own improvements back through
  /// UpdateMin — MESSI's shared-BSF trick lifted across searches. The
  /// shard router points every per-shard search of one routed query at
  /// one cell, so a tight bound found on any shard prunes the others.
  /// Exactness is preserved: the cell's value can never drop below the
  /// query's true global answer. Null: the search uses only its local
  /// bound.
  AtomicMinFloat* shared_bound = nullptr;
};

struct SearchResponse {
  /// Ascending (squared distance, id). Exactly min(k, collection size)
  /// entries for exact searches.
  std::vector<Neighbor> neighbors;
  QueryStats stats;
};

/// The one request-admission rule: validates `query`/`request` against a
/// backend's shape and capabilities and returns the typed rejection
/// (kInvalidArgument for malformed requests, kNotSupported for
/// capability gaps) every backend answers with, or OK when the request
/// must be served. Engine::Search applies exactly this function, so
/// external oracles (the storm harness, tests/capability_gap_test.cpp)
/// can predict a backend's rejection without a per-call-site whitelist.
/// `algorithm_name` only flavors the error message.
Status CheckRequestAgainstCapabilities(const EngineCapabilities& caps,
                                       size_t series_length,
                                       const char* algorithm_name,
                                       SeriesView query,
                                       const SearchRequest& request);

/// Summary of one SearchBackend::Append call.
struct AppendReport {
  /// Series added by this call.
  size_t appended = 0;
  /// Collection size after the call.
  size_t total_series = 0;
  /// Root subtrees of the published delta segment(s); 0 for scan
  /// engines, which have no tree. A sharded append sums its shards.
  size_t touched_subtrees = 0;
  double wall_seconds = 0.0;
};

/// Abstract query/ingest/persistence surface. Implementations must make
/// Search (both overloads), Append, Save/Compact and every accessor
/// safe to call concurrently, with the same guarantees Engine documents
/// (engine.h) — the serve layer does not know which backend it drives.
class SearchBackend {
 public:
  virtual ~SearchBackend() = default;

  SearchBackend(const SearchBackend&) = delete;
  SearchBackend& operator=(const SearchBackend&) = delete;

  /// Answers one similarity-search query with the backend's own thread
  /// pool(s). Thread-safe: concurrent calls serialize on the pool (use
  /// Submit/SearchBatch to actually overlap queries).
  virtual Result<SearchResponse> Search(SeriesView query,
                                        const SearchRequest& request = {}) = 0;

  /// Answers one query on the given executor instead of the backend's
  /// pool. Re-entrant: any number of calls may run concurrently as long
  /// as each uses its own executor (e.g. per-thread InlineExecutors).
  /// The caller is responsible for the executor's own concurrency rules.
  virtual Result<SearchResponse> Search(SeriesView query,
                                        const SearchRequest& request,
                                        Executor* exec) = 0;

  /// Asynchronously answers one query through the backend's query
  /// service. The query values are copied, so the view only needs to
  /// live until Submit returns.
  std::future<Result<SearchResponse>> Submit(SeriesView query,
                                             const SearchRequest& request = {});

  /// As Submit, subject to the query service's admission control:
  /// rejected with kOverloaded when the in-flight cap is reached.
  Result<std::future<Result<SearchResponse>>> TrySubmit(
      SeriesView query, const SearchRequest& request,
      const SubmitOptions& submit);

  /// Answers a batch of queries concurrently through the query service;
  /// responses are in query order. Fails on the first failing query.
  Result<std::vector<SearchResponse>> SearchBatch(
      const std::vector<SeriesView>& queries,
      const SearchRequest& request = {});

  /// The backend's query service, created on first use. Never null.
  virtual QueryService* query_service() = 0;

  /// Incremental ingest of `count` series of series_length() values
  /// each, row-major. Requires capabilities().append; see Engine::Append
  /// (engine.h) for the thread-safety and failure contract every
  /// implementation honors.
  virtual Result<AppendReport> Append(const Value* values, size_t count) = 0;

  /// As above from a Dataset (validates the batch's series length).
  Result<AppendReport> Append(const Dataset& batch);

  /// Writes the backend's index state to `snapshot_path` (for a sharded
  /// backend, a manifest plus per-shard files derived from the path).
  /// Requires capabilities().snapshot. Thread-safe against concurrent
  /// Search and Append calls.
  virtual Status Save(const std::string& snapshot_path) = 0;

  /// Folds every live segment into the base index, then rewrites the
  /// snapshot chain as one fresh full snapshot at `snapshot_path`.
  virtual Status Compact(const std::string& snapshot_path) = 0;

  /// What this backend supports; every kNotSupported it returns is
  /// derived from this value.
  virtual EngineCapabilities capabilities() const = 0;

  /// Short lowercase algorithm name ("messi", "paris+", ...): for a
  /// sharded backend, the shards' common algorithm.
  virtual const char* algorithm_name() const = 0;

  /// Points per series in the indexed collection.
  virtual size_t series_length() const = 0;

  /// Series in the indexed collection (serve-layer cost heuristics).
  /// Grows under Append; safe to read concurrently.
  virtual size_t series_count() const = 0;

  /// Number of Append calls that have completed (monotonic). Each
  /// append publishes a new index epoch to queries atomically.
  virtual uint64_t append_epoch() const = 0;

  /// Number of compaction actions (background passes and synchronous
  /// folds) that published a merged/folded snapshot. Monotonic;
  /// exported by the serving metrics layer.
  virtual uint64_t compaction_count() const = 0;

 protected:
  SearchBackend() = default;
};

}  // namespace parisax

#endif  // PARISAX_CORE_SEARCH_BACKEND_H_
