#include "core/engine.h"

#include <limits.h>
#include <stdlib.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <utility>

#include "io/mmap_source.h"
#include "persist/snapshot.h"
#include "scan/ucr_scan.h"
#include "serve/query_service.h"
#include "util/timer.h"

namespace parisax {

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kBruteForce:
      return "brute";
    case Algorithm::kUcrSerial:
      return "ucr";
    case Algorithm::kUcrParallel:
      return "ucr-p";
    case Algorithm::kAdsPlus:
      return "ads+";
    case Algorithm::kParis:
      return "paris";
    case Algorithm::kParisPlus:
      return "paris+";
    case Algorithm::kMessi:
      return "messi";
  }
  return "unknown";
}

Result<Algorithm> ParseAlgorithm(const std::string& name) {
  if (name == "brute") return Algorithm::kBruteForce;
  if (name == "ucr") return Algorithm::kUcrSerial;
  if (name == "ucr-p") return Algorithm::kUcrParallel;
  if (name == "ads+" || name == "ads") return Algorithm::kAdsPlus;
  if (name == "paris") return Algorithm::kParis;
  if (name == "paris+") return Algorithm::kParisPlus;
  if (name == "messi") return Algorithm::kMessi;
  return Status::InvalidArgument("unknown algorithm: " + name);
}

const EngineCapabilities& AlgorithmCapabilities(Algorithm algorithm) {
  // The single source of truth for what each engine family supports.
  // Engine::capabilities() narrows it by source residency; CheckQuery,
  // Save, Append and Build reject from it with typed kNotSupported
  // errors. The scan engines support append trivially (no index to
  // grow); ADS+ does not — its serial bulk-load is not re-runnable over
  // a tail.
  static constexpr EngineCapabilities kBruteForce{
      .max_k = SIZE_MAX, .dtw = true, .dtw_knn = false,
      .approximate = false, .snapshot = false, .streaming_build = false,
      .append = true, .background_compaction = false};
  static constexpr EngineCapabilities kUcrSerial{
      .max_k = 1, .dtw = true, .dtw_knn = false,
      .approximate = false, .snapshot = false, .streaming_build = true,
      .append = true, .background_compaction = false};
  static constexpr EngineCapabilities kUcrParallel{
      .max_k = SIZE_MAX, .dtw = true, .dtw_knn = false,
      .approximate = false, .snapshot = false, .streaming_build = false,
      .append = true, .background_compaction = false};
  static constexpr EngineCapabilities kAdsPlus{
      .max_k = 1, .dtw = false, .dtw_knn = false,
      .approximate = true, .snapshot = false, .streaming_build = true,
      .append = false, .background_compaction = false};
  static constexpr EngineCapabilities kParis{
      .max_k = 1, .dtw = false, .dtw_knn = false,
      .approximate = true, .snapshot = true, .streaming_build = true,
      .append = true, .background_compaction = true};
  static constexpr EngineCapabilities kMessi{
      .max_k = SIZE_MAX, .dtw = true, .dtw_knn = false,
      .approximate = true, .snapshot = true, .streaming_build = false,
      .append = true, .background_compaction = true};
  switch (algorithm) {
    case Algorithm::kBruteForce:
      return kBruteForce;
    case Algorithm::kUcrSerial:
      return kUcrSerial;
    case Algorithm::kUcrParallel:
      return kUcrParallel;
    case Algorithm::kAdsPlus:
      return kAdsPlus;
    case Algorithm::kParis:
    case Algorithm::kParisPlus:
      return kParis;
    case Algorithm::kMessi:
      return kMessi;
  }
  return kBruteForce;
}

namespace {

/// The one narrowing rule both Engine::capabilities() (runtime truth
/// from the live source) and NarrowCapabilities (residency enum, for
/// the generated docs) apply, so the two can never drift.
EngineCapabilities NarrowBy(EngineCapabilities caps, bool addressable,
                            bool appendable) {
  if (!addressable) {
    // The streamed serial scan has no DTW path (on-disk DTW is not
    // implemented), so a non-addressable source drops DTW.
    caps.dtw = false;
  }
  caps.append = caps.append && appendable;
  // Background folds run concurrently with queries, which is only safe
  // when appends themselves are gate-free: addressable sources whose
  // serving state is immutable-published. Streamed engines fold
  // synchronously in Save/Compact instead.
  caps.background_compaction =
      caps.background_compaction && caps.append && addressable;
  return caps;
}

/// The build-acceptance rule, shared by Engine::Build (runtime
/// addressability) and CanBuildOver (residency enum, for the generated
/// docs).
bool BuildableBy(const EngineCapabilities& caps, bool addressable) {
  return addressable || caps.streaming_build;
}

}  // namespace

const char* SourceResidencyName(SourceResidency residency) {
  switch (residency) {
    case SourceResidency::kOwnedMemory:
      return "in-memory";
    case SourceResidency::kBorrowedMemory:
      return "borrowed";
    case SourceResidency::kMmap:
      return "mmap";
    case SourceResidency::kStreamedFile:
      return "streamed";
  }
  return "unknown";
}

EngineCapabilities NarrowCapabilities(Algorithm algorithm,
                                      SourceResidency residency) {
  const bool addressable = residency != SourceResidency::kStreamedFile;
  const bool appendable = residency != SourceResidency::kBorrowedMemory;
  return NarrowBy(AlgorithmCapabilities(algorithm), addressable,
                  appendable);
}

bool CanBuildOver(Algorithm algorithm, SourceResidency residency) {
  return BuildableBy(AlgorithmCapabilities(algorithm),
                     residency != SourceResidency::kStreamedFile);
}

// --- SourceSpec -------------------------------------------------------------

SourceSpec SourceSpec::InMemory(Dataset dataset) {
  SourceSpec spec;
  spec.kind_ = Kind::kInMemory;
  spec.dataset_ = std::make_unique<Dataset>(std::move(dataset));
  return spec;
}

SourceSpec SourceSpec::Borrowed(const Dataset* dataset) {
  SourceSpec spec;
  spec.kind_ = Kind::kBorrowed;
  spec.borrowed_ = dataset;
  return spec;
}

SourceSpec SourceSpec::Mmap(std::string path) {
  SourceSpec spec;
  spec.kind_ = Kind::kMmap;
  spec.path_ = std::move(path);
  return spec;
}

SourceSpec SourceSpec::File(std::string path) {
  SourceSpec spec;
  spec.kind_ = Kind::kFile;
  spec.path_ = std::move(path);
  return spec;
}

SourceSpec SourceSpec::Custom(std::unique_ptr<RawSeriesSource> source) {
  SourceSpec spec;
  spec.kind_ = Kind::kCustom;
  spec.custom_ = std::move(source);
  return spec;
}

namespace {

Status ValidateOptions(const EngineOptions& options) {
  if (options.num_threads < 1) {
    return Status::InvalidArgument("num_threads must be positive");
  }
  if (options.tree.segments < 1 || options.tree.segments > kMaxSegments) {
    return Status::InvalidArgument("tree.segments must be in [1, 16]");
  }
  if (options.tree.leaf_capacity == 0) {
    return Status::InvalidArgument("tree.leaf_capacity must be positive");
  }
  if (options.batch_series == 0 || options.chunk_series == 0) {
    return Status::InvalidArgument("batch/chunk sizes must be positive");
  }
  return Status::OK();
}

const char* SpecDescription(bool addressable, bool borrowed, bool mmap) {
  if (mmap) return "mmap";
  if (!addressable) return "streamed file";
  return borrowed ? "borrowed in-memory" : "in-memory";
}

}  // namespace

Engine::Engine(const EngineOptions& options) : options_(options) {
  pool_ = std::make_unique<ThreadPool>(options_.num_threads);
}

Engine::~Engine() {
  // The compactor references the indexes and append_mu_; stop it before
  // anything it touches goes away.
  StopCompactor();
  // The service's workers reference the indexes and the pool, and some
  // members (the wrapped indexes) are declared after service_ and would
  // otherwise be destroyed first; stop the workers before any of them
  // goes away.
  service_.reset();
}

Result<std::unique_ptr<Engine>> Engine::Build(SourceSpec spec,
                                              const EngineOptions& options) {
  PARISAX_RETURN_IF_ERROR(ValidateOptions(options));
  auto engine = std::unique_ptr<Engine>(new Engine(options));
  EngineOptions& opts = engine->options_;

  // Materialize the spec into the engine-owned source.
  std::unique_ptr<RawSeriesSource> source;
  switch (spec.kind_) {
    case SourceSpec::Kind::kInMemory:
      source = std::make_unique<InMemorySource>(std::move(*spec.dataset_));
      break;
    case SourceSpec::Kind::kBorrowed:
      if (spec.borrowed_ == nullptr) {
        return Status::InvalidArgument("borrowed dataset must not be null");
      }
      source = std::make_unique<InMemorySource>(spec.borrowed_);
      break;
    case SourceSpec::Kind::kMmap: {
      std::unique_ptr<MmapSource> mmap;
      PARISAX_ASSIGN_OR_RETURN(mmap, MmapSource::Open(spec.path_));
      source = std::move(mmap);
      break;
    }
    case SourceSpec::Kind::kFile: {
      // Index engines stream only while building (build_profile); the
      // serial scan engine streams on every query (query_profile).
      const DiskProfile stream_profile =
          opts.algorithm == Algorithm::kUcrSerial ? opts.query_profile
                                                  : opts.build_profile;
      std::unique_ptr<FileSource> file;
      PARISAX_ASSIGN_OR_RETURN(
          file,
          FileSource::Open(spec.path_, opts.query_profile, stream_profile));
      source = std::move(file);
      break;
    }
    case SourceSpec::Kind::kCustom:
      if (spec.custom_ == nullptr) {
        return Status::InvalidArgument("custom source must not be null");
      }
      source = std::move(spec.custom_);
      break;
  }

  const bool addressable = source->addressable();
  const EngineCapabilities& caps = AlgorithmCapabilities(opts.algorithm);
  if (!BuildableBy(caps, addressable)) {
    return Status::NotSupported(
        std::string(AlgorithmName(opts.algorithm)) +
        " requires an addressable (in-memory or mmap) source; it cannot "
        "build from a streamed file");
  }

  engine->addressable_source_ = addressable;
  engine->series_length_ = source->length();
  engine->series_count_ = source->count();
  if (opts.tree.series_length == 0) {
    opts.tree.series_length = source->length();
  }
  if (opts.tree.series_length != source->length()) {
    return Status::InvalidArgument(
        "tree.series_length does not match the source");
  }
  // Streamed index builds materialize leaves; default the store next to
  // the dataset file.
  if (!addressable && opts.leaf_storage_path.empty() &&
      !spec.path_.empty()) {
    opts.leaf_storage_path = spec.path_ + ".leaves";
  }

  const char* source_desc =
      SpecDescription(addressable,
                      spec.kind_ == SourceSpec::Kind::kBorrowed,
                      spec.kind_ == SourceSpec::Kind::kMmap);

  WallTimer wall;
  std::ostringstream details;
  switch (opts.algorithm) {
    case Algorithm::kBruteForce:
    case Algorithm::kUcrSerial:
    case Algorithm::kUcrParallel:
      engine->source_ = std::move(source);
      engine->query_source_ = engine->source_.get();
      details << "scan engine, no index";
      break;
    case Algorithm::kAdsPlus: {
      AdsBuildOptions build;
      build.tree = opts.tree;
      build.batch_series = opts.batch_series;
      // Streamed builds got a default path above; an explicitly set one
      // enables leaf materialization over any residency.
      build.leaf_storage_path = opts.leaf_storage_path;
      build.leaf_write_mbps = opts.leaf_write_mbps;
      PARISAX_ASSIGN_OR_RETURN(engine->ads_,
                               AdsIndex::Build(std::move(source), build));
      engine->query_source_ = engine->ads_->raw_source();
      const AdsBuildStats& bs = engine->ads_->build_stats();
      engine->build_report_.tree = bs.tree;
      if (addressable) {
        details << "ads+ serial build, cpu=" << bs.cpu_seconds << "s";
      } else {
        details << "ads+ on-disk build, read=" << bs.read_seconds
                << "s cpu=" << bs.cpu_seconds
                << "s write=" << bs.write_seconds << "s";
      }
      break;
    }
    case Algorithm::kParis:
    case Algorithm::kParisPlus: {
      ParisBuildOptions build;
      build.num_workers = opts.num_threads;
      build.plus_mode = opts.algorithm == Algorithm::kParisPlus;
      build.batch_series = opts.batch_series;
      build.batches_per_round = opts.batches_per_round;
      build.tree = opts.tree;
      build.leaf_storage_path = opts.leaf_storage_path;
      build.leaf_write_mbps = opts.leaf_write_mbps;
      PARISAX_ASSIGN_OR_RETURN(engine->paris_,
                               ParisIndex::Build(std::move(source), build));
      engine->query_source_ = engine->paris_->raw_source();
      const ParisBuildStats& bs = engine->paris_->build_stats();
      engine->build_report_.tree = bs.tree;
      if (addressable) {
        details << "paris in-memory build, stage3=" << bs.stage3_wall_seconds
                << "s summarize_cpu=" << bs.summarize_cpu_seconds
                << "s tree_cpu=" << bs.tree_cpu_seconds << "s";
      } else {
        details << "paris on-disk build, read=" << bs.read_wall_seconds
                << "s stage3=" << bs.stage3_wall_seconds
                << "s final_flush=" << bs.final_flush_wall_seconds << "s";
      }
      break;
    }
    case Algorithm::kMessi: {
      MessiBuildOptions build;
      build.num_workers = opts.num_threads;
      build.chunk_series = opts.chunk_series;
      build.locked_buffers = opts.locked_buffers;
      build.tree = opts.tree;
      PARISAX_ASSIGN_OR_RETURN(
          engine->messi_,
          MessiIndex::Build(std::move(source), build, engine->pool_.get()));
      engine->query_source_ = &engine->messi_->source();
      const MessiBuildStats& bs = engine->messi_->build_stats();
      engine->build_report_.tree = bs.tree;
      details << "messi build, summarize=" << bs.summarize_wall_seconds
              << "s tree=" << bs.tree_wall_seconds << "s";
      break;
    }
  }
  engine->build_report_.wall_seconds = wall.ElapsedSeconds();
  details << ", source=" << source_desc;
  engine->build_report_.details = details.str();
  engine->StartCompactorIfEnabled();
  return engine;
}

Result<std::unique_ptr<Engine>> Engine::Open(
    const std::string& snapshot_path, const std::string& data_path) {
  return OpenInternal(snapshot_path, data_path, EngineOptions(), false);
}

Result<std::unique_ptr<Engine>> Engine::Open(
    const std::string& snapshot_path, const std::string& data_path,
    const EngineOptions& options) {
  return OpenInternal(snapshot_path, data_path, options, true);
}

Result<std::unique_ptr<Engine>> Engine::OpenInternal(
    const std::string& snapshot_path, const std::string& data_path,
    const EngineOptions& options, bool enforce_algorithm) {
  PARISAX_RETURN_IF_ERROR(ValidateOptions(options));
  SnapshotInfo info;
  PARISAX_ASSIGN_OR_RETURN(info, ReadSnapshotInfo(snapshot_path));

  // The snapshot records what it holds (ParIS and ParIS+ share the
  // query machinery; the label matters for reporting).
  Algorithm restored = Algorithm::kMessi;
  if (info.kind == SnapshotKind::kParis) {
    restored = info.algorithm == static_cast<uint8_t>(Algorithm::kParisPlus)
                   ? Algorithm::kParisPlus
                   : Algorithm::kParis;
  }
  if (enforce_algorithm && options.algorithm != restored) {
    return Status::InvalidArgument(
        std::string("snapshot records ") + AlgorithmName(restored) +
        " but options.algorithm asks for " +
        AlgorithmName(options.algorithm) +
        "; drop options.algorithm (two-argument Open) to accept whatever "
        "the snapshot holds");
  }

  auto engine = std::unique_ptr<Engine>(new Engine(options));
  engine->series_length_ = info.tree.series_length;
  engine->series_count_ = info.series_count;
  EngineOptions& opts = engine->options_;
  opts.algorithm = restored;
  opts.tree = info.tree;

  std::unique_ptr<MmapSource> source;
  PARISAX_ASSIGN_OR_RETURN(source, MmapSource::Open(data_path));
  engine->addressable_source_ = true;

  WallTimer wall;
  std::ostringstream details;
  switch (info.kind) {
    case SnapshotKind::kMessi: {
      PARISAX_ASSIGN_OR_RETURN(
          engine->messi_,
          LoadMessiIndex(snapshot_path, std::move(source),
                         engine->pool_.get()));
      engine->query_source_ = &engine->messi_->source();
      engine->build_report_.tree = engine->messi_->build_stats().tree;
      break;
    }
    case SnapshotKind::kParis: {
      PARISAX_ASSIGN_OR_RETURN(
          engine->paris_,
          LoadParisIndex(snapshot_path, std::move(source),
                         engine->pool_.get()));
      engine->query_source_ = engine->paris_->raw_source();
      engine->build_report_.tree = engine->paris_->build_stats().tree;
      break;
    }
  }
  engine->build_report_.wall_seconds = wall.ElapsedSeconds();
  details << AlgorithmName(opts.algorithm)
          << " restored from snapshot, raw data mmap-ed from " << data_path;
  if (info.is_delta) {
    details << " (rehydrated a " << info.chain_depth
            << "-delta chain as serving segments)";
  }
  engine->build_report_.details = details.str();
  // The opened file becomes the lineage head: appends followed by Save
  // chain deltas on top of it. For a full snapshot the chain is just
  // the head; for a delta head, re-walk the links (header-only reads,
  // cheap next to the replay that just ran) so Save can refuse to
  // overwrite chain members without touching the disk again.
  std::vector<std::string> chain_paths;
  if (!info.is_delta) {
    chain_paths.push_back(snapshot_path);
  } else if (auto chain = ReadSnapshotChain(snapshot_path); chain.ok()) {
    chain_paths.reserve(chain->size());
    for (const SnapshotChainEntry& entry : *chain) {
      chain_paths.push_back(entry.path);
    }
  }
  engine->lineage_ = SnapshotLineage{snapshot_path, info.header_crc,
                                     info.series_count, info.chain_depth,
                                     std::move(chain_paths)};
  engine->StartCompactorIfEnabled();
  return engine;
}

Status Engine::Save(const std::string& snapshot_path) {
  if (!capabilities().snapshot) {
    return Status::NotSupported(
        std::string(AlgorithmName(options_.algorithm)) +
        " does not support snapshots (capabilities().snapshot is false)");
  }
  // append_mu_ freezes the serving snapshot (appends, compactor passes
  // and other saves all hold it); pool_mu_ covers the serialization
  // fan-out on the shared pool and guards the lineage. Queries keep
  // running throughout — they hold neither lock.
  MutexLock append_lock(&append_mu_);
  MutexLock pool_lock(&pool_mu_);

  const auto snap = messi_ != nullptr ? messi_->serving()
                                      : paris_ != nullptr
                                            ? paris_->serving()
                                            : nullptr;
  if (snap == nullptr) {
    return Status::Internal("snapshot-capable engine has no index");
  }

  // Appends since the last head, still coverable by segments (the
  // compactor has not folded past the head), a previous file to chain
  // to, and a target that does not overwrite the chain: write an
  // append-only delta — one segment over [head, count). Writing a
  // delta over ANY file of the existing chain (not just the head)
  // would corrupt the lineage — a delta at the base's path makes the
  // chain a cycle — so those paths fall back to a full snapshot, which
  // is always safe to place anywhere (it supersedes the chain). The
  // same fallback auto-compacts a chain that has reached its maximum
  // length, keeping Save total.
  if (lineage_.has_value() &&
      snap->count > lineage_->head_series_count &&
      snap->base_count <= lineage_->head_series_count &&
      lineage_->head_depth + 1 <=
          static_cast<uint32_t>(kMaxSnapshotChain) &&
      !PathIsInLineageChain(snapshot_path)) {
    std::shared_ptr<const Segment> delta;
    PARISAX_ASSIGN_OR_RETURN(
        delta, DeltaSegmentLocked(snap, lineage_->head_series_count));
    SnapshotDeltaSaveOptions dopts;
    dopts.algorithm = static_cast<uint8_t>(options_.algorithm);
    dopts.base_path = lineage_->head_path;
    dopts.base_header_crc = lineage_->head_header_crc;
    dopts.prev_series_count = lineage_->head_series_count;
    dopts.chain_depth = lineage_->head_depth + 1;
    PARISAX_RETURN_IF_ERROR(SaveSegmentDelta(
        messi_ != nullptr ? SnapshotKind::kMessi : SnapshotKind::kParis,
        *delta, snapshot_path, pool_.get(), dopts));
    return AdoptLineageHead(snapshot_path);
  }
  return SaveFullLocked(snapshot_path);
}

Status Engine::Compact(const std::string& snapshot_path) {
  if (!capabilities().snapshot) {
    return Status::NotSupported(
        std::string(AlgorithmName(options_.algorithm)) +
        " does not support snapshots (capabilities().snapshot is false)");
  }
  // Fold-all + full save *is* the compaction: the written file contains
  // every subtree, so the previous chain files are no longer needed to
  // restore this engine.
  MutexLock append_lock(&append_mu_);
  MutexLock pool_lock(&pool_mu_);
  return SaveFullLocked(snapshot_path);
}

Status Engine::FoldAllLocked() {
  // Full snapshots serialize the base only, so every live segment folds
  // in first. Caller holds append_mu_ (no concurrent publication, so
  // the compare-and-publish folds cannot be discarded) and pool_mu_.
  // The write side of index_gate_ covers the sources the fold shares
  // with queries in place (streamed raw fetches, leaf-storage
  // readbacks); for purely addressable engines it is uncontended in
  // practice.
  WriterLock gate(&index_gate_);
  for (;;) {
    const auto snap =
        messi_ != nullptr ? messi_->serving() : paris_->serving();
    if (snap->segments.empty()) return Status::OK();
    bool folded = false;
    PARISAX_ASSIGN_OR_RETURN(
        folded, messi_ != nullptr
                    ? messi_->FoldSegments(snap, snap->segments.size(),
                                           pool_.get())
                    : paris_->FoldSegments(snap, snap->segments.size(),
                                           pool_.get()));
    if (!folded) {
      return Status::Internal(
          "fold discarded while the append mutex was held");
    }
    compaction_count_.fetch_add(1, std::memory_order_acq_rel);
  }
}

Result<std::shared_ptr<const Segment>> Engine::DeltaSegmentLocked(
    const std::shared_ptr<const ServingState>& snap, uint64_t head) {
  // Fast path: a live segment covering exactly [head, count) — the
  // common case when saves line up with append boundaries and the
  // compactor has not merged across the head.
  for (const auto& segment : snap->segments) {
    if (segment->first == head &&
        segment->first + segment->count == snap->count) {
      return segment;
    }
  }
  // Re-section: collect every entry with id >= head (merged segments
  // may straddle the head) and build the covering segment fresh.
  std::vector<LeafEntry> entries;
  for (const auto& segment : snap->segments) {
    if (segment->first + segment->count <= head) continue;
    std::vector<LeafEntry> collected;
    PARISAX_RETURN_IF_ERROR(
        CollectTreeEntries(segment->tree, /*storage=*/nullptr,
                           &collected));
    for (const LeafEntry& e : collected) {
      if (e.id >= head) entries.push_back(e);
    }
  }
  const SaxTreeOptions& tree_options = messi_ != nullptr
                                           ? messi_->tree_options()
                                           : paris_->tree_options();
  return SegmentFromEntries(entries, head, snap->count - head,
                            tree_options,
                            /*with_sax_rows=*/paris_ != nullptr,
                            pool_.get());
}

Status Engine::SaveFullLocked(const std::string& snapshot_path) {
  PARISAX_RETURN_IF_ERROR(FoldAllLocked());
  SnapshotSaveOptions sopts;
  sopts.algorithm = static_cast<uint8_t>(options_.algorithm);
  const Status saved =
      messi_ != nullptr
          ? SaveIndex(*messi_, snapshot_path, pool_.get(), sopts)
          : SaveIndex(*paris_, snapshot_path, pool_.get(), sopts);
  PARISAX_RETURN_IF_ERROR(saved);
  return AdoptLineageHead(snapshot_path);
}

namespace {

/// Directory-canonical form for same-file comparison: realpath the
/// directory (the file itself may not exist yet) and keep the final
/// component, so "./d1.snap", "x/../d1.snap" and "d1.snap" all compare
/// equal. Falls back to the input when the directory cannot be
/// resolved.
std::string CanonicalForCompare(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : path.substr(0, slash);
  const std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  char resolved[PATH_MAX];
  if (::realpath(dir.c_str(), resolved) == nullptr) return path;
  return std::string(resolved) + "/" + base;
}

}  // namespace

bool Engine::PathIsInLineageChain(const std::string& snapshot_path) const {
  // The lineage carries every chain path it has adopted, so this is an
  // in-memory check on the hot persistence path. An empty list means
  // the chain membership is unknown (should not happen — Open and Save
  // both record it) and reports "in chain" conservatively: the caller
  // then writes a full snapshot, which never corrupts anything. Paths
  // are compared directory-canonicalized, so spelling aliases of a
  // chain member ("./d1.snap" vs "d1.snap") cannot trick Save into
  // overwriting it with a delta. (Distinct hard links to one file are
  // still not detected.)
  if (lineage_->chain_paths.empty()) return true;
  const std::string canonical = CanonicalForCompare(snapshot_path);
  for (const std::string& path : lineage_->chain_paths) {
    if (CanonicalForCompare(path) == canonical) return true;
  }
  return false;
}

Status Engine::AdoptLineageHead(const std::string& snapshot_path) {
  // Re-read what was just written: the header CRC is the identity the
  // next delta's back-reference must carry.
  SnapshotInfo info;
  PARISAX_ASSIGN_OR_RETURN(info, ReadSnapshotInfo(snapshot_path));
  // A full snapshot starts a fresh single-file chain; a delta extends
  // the previous one.
  std::vector<std::string> chain_paths;
  if (info.chain_depth > 0 && lineage_.has_value()) {
    chain_paths = std::move(lineage_->chain_paths);
  }
  chain_paths.push_back(snapshot_path);
  lineage_ = SnapshotLineage{snapshot_path, info.header_crc,
                             info.series_count, info.chain_depth,
                             std::move(chain_paths)};
  return Status::OK();
}

EngineCapabilities Engine::capabilities() const {
  return NarrowBy(AlgorithmCapabilities(options_.algorithm),
                  addressable_source_, query_source_->appendable());
}

Status Engine::CheckQuery(SeriesView query,
                          const SearchRequest& request) const {
  // The shared admission rule (core/search_backend.h): keeping it one
  // free function lets external oracles predict this engine's typed
  // rejections exactly.
  return CheckRequestAgainstCapabilities(capabilities(), series_length_,
                                         AlgorithmName(options_.algorithm),
                                         query, request);
}

bool Engine::UsesSharedPool(const SearchRequest& request) const {
  if (request.approximate) return false;  // leaf probe, no fan-out
  switch (options_.algorithm) {
    case Algorithm::kUcrParallel:
    case Algorithm::kParis:
    case Algorithm::kParisPlus:
    case Algorithm::kMessi:
      return true;
    default:
      return false;
  }
}

Result<SearchResponse> Engine::Search(SeriesView query,
                                      const SearchRequest& request) {
  if (!UsesSharedPool(request)) {
    return Search(query, request, pool_.get());
  }
  MutexLock lock(&pool_mu_);
  return Search(query, request, pool_.get());
}

Result<SearchResponse> Engine::Search(SeriesView query,
                                      const SearchRequest& request,
                                      Executor* exec) {
  // The append RW gate: any number of queries run concurrently; an
  // Append drains them, mutates the index exclusively, and the next
  // queries see the new epoch. (Lock order: pool_mu_, when the caller
  // holds it, is always acquired before this.)
  ReaderLock gate(&index_gate_);
  PARISAX_RETURN_IF_ERROR(CheckQuery(query, request));
  // Entry deadline check, covering every algorithm. The index engines
  // additionally poll the token inside their hot loops (MESSI per leaf
  // visit, ParIS per batch); the scan engines and ADS+ run to
  // completion once admitted.
  if (Expired(request.cancel)) {
    return Status::DeadlineExceeded("query deadline expired before search");
  }

  SearchResponse response;
  WallTimer timer;
  const Algorithm algo = options_.algorithm;
  const RawSeriesSource& source = *query_source_;

  switch (algo) {
    case Algorithm::kBruteForce: {
      if (request.dtw) {
        response.neighbors.push_back(
            BruteForceDtwNn(source, query, request.dtw_band));
      } else if (request.k > 1) {
        response.neighbors =
            BruteForceKnn(source, query, request.k, options_.kernel);
      } else {
        response.neighbors.push_back(
            BruteForceNn(source, query, options_.kernel));
      }
      break;
    }
    case Algorithm::kUcrSerial: {
      ScanStats scan;
      if (addressable_source_) {
        response.neighbors.push_back(
            request.dtw
                ? DtwScanSerial(source, query, request.dtw_band, &scan)
                : UcrScanSerial(source, query, &scan, options_.kernel));
      } else {
        Neighbor nn;
        PARISAX_ASSIGN_OR_RETURN(
            nn, UcrScanStream(source, query, options_.batch_series, &scan,
                              options_.kernel));
        response.neighbors.push_back(nn);
      }
      response.stats.real_dist_calcs = scan.distance_calcs;
      break;
    }
    case Algorithm::kUcrParallel: {
      ScanStats scan;
      if (request.dtw) {
        response.neighbors.push_back(DtwScanParallel(
            source, query, request.dtw_band, exec, &scan));
      } else if (request.k > 1) {
        response.neighbors = UcrKnnParallel(source, query, request.k,
                                            exec, &scan, options_.kernel);
      } else {
        response.neighbors.push_back(UcrScanParallel(
            source, query, exec, &scan, options_.kernel));
      }
      response.stats.real_dist_calcs = scan.distance_calcs;
      break;
    }
    case Algorithm::kAdsPlus: {
      Neighbor nn;
      if (request.approximate) {
        PARISAX_ASSIGN_OR_RETURN(
            nn, ads_->SearchApproximate(query, &response.stats));
      } else {
        AdsQueryOptions qopts;
        qopts.kernel = options_.kernel;
        PARISAX_ASSIGN_OR_RETURN(
            nn, ads_->SearchExact(query, qopts, &response.stats));
      }
      response.neighbors.push_back(nn);
      break;
    }
    case Algorithm::kParis:
    case Algorithm::kParisPlus: {
      Neighbor nn;
      if (request.approximate) {
        PARISAX_ASSIGN_OR_RETURN(
            nn, paris_->SearchApproximate(query, &response.stats));
      } else {
        ParisQueryOptions qopts;
        qopts.num_workers = exec->num_threads();
        qopts.kernel = options_.kernel;
        qopts.cancel = request.cancel;
        qopts.shared_bound = request.shared_bound;
        PARISAX_ASSIGN_OR_RETURN(
            nn, paris_->SearchExact(query, qopts, exec, &response.stats));
      }
      response.neighbors.push_back(nn);
      break;
    }
    case Algorithm::kMessi: {
      MessiQueryOptions qopts;
      qopts.num_workers = exec->num_threads();
      qopts.num_queues = options_.num_queues;
      qopts.kernel = options_.kernel;
      qopts.dtw_band = request.dtw_band;
      qopts.cancel = request.cancel;
      qopts.shared_bound = request.shared_bound;
      if (request.approximate) {
        Neighbor nn;
        PARISAX_ASSIGN_OR_RETURN(
            nn, messi_->SearchApproximate(query, &response.stats));
        response.neighbors.push_back(nn);
      } else if (request.dtw) {
        Neighbor nn;
        PARISAX_ASSIGN_OR_RETURN(
            nn, messi_->SearchExactDtw(query, qopts, exec,
                                       &response.stats));
        response.neighbors.push_back(nn);
      } else if (request.k > 1) {
        PARISAX_ASSIGN_OR_RETURN(
            response.neighbors,
            messi_->SearchKnn(query, request.k, qopts, exec,
                              &response.stats));
      } else {
        Neighbor nn;
        PARISAX_ASSIGN_OR_RETURN(
            nn, messi_->SearchExact(query, qopts, exec,
                                    &response.stats));
        response.neighbors.push_back(nn);
      }
      break;
    }
  }
  response.stats.total_seconds = timer.ElapsedSeconds();
  return response;
}

Result<AppendReport> Engine::Append(const Value* values, size_t count) {
  if (!capabilities().append) {
    return Status::NotSupported(
        std::string(AlgorithmName(options_.algorithm)) +
        " does not support appends over this source "
        "(capabilities().append is false)");
  }
  if (count > 0 && values == nullptr) {
    return Status::InvalidArgument("appended values must not be null");
  }

  WallTimer wall;
  AppendReport report;
  report.appended = count;
  if (count == 0) {
    report.total_series = series_count();
    return report;
  }

  // append_mu_ serializes this append with other appends, Save/Compact
  // and compactor passes; queries are NOT excluded.
  MutexLock append_lock(&append_mu_);

  std::vector<uint32_t> touched;
  // Index engines over addressable sources publish the new segment as
  // an atomic snapshot swap — in-flight queries keep the snapshot they
  // captured, so nothing drains. The segment is small (one batch), so
  // building it inline beats contending for the shared query pool.
  const bool segmented =
      (messi_ != nullptr || paris_ != nullptr) && addressable_source_;
  if (segmented) {
    InlineExecutor inline_exec;
    const Status appended =
        messi_ != nullptr
            ? messi_->Append(values, count, &inline_exec, &touched)
            : paris_->Append(values, count, &inline_exec, &touched);
    PARISAX_RETURN_IF_ERROR(appended);
  } else {
    // Scan engines mutate the raw source queries scan in place, and
    // streamed index engines share buffered readers with the refine
    // path — both still need the exclusive side of the RW gate:
    // in-flight queries drain, new ones wait. pool_mu_ first (lock
    // order; Save must not run mid-append), then the gate.
    MutexLock pool_lock(&pool_mu_);
    WriterLock gate(&index_gate_);
    switch (options_.algorithm) {
      case Algorithm::kBruteForce:
      case Algorithm::kUcrSerial:
      case Algorithm::kUcrParallel:
        // Scan engines have no index: growing the source is the whole
        // ingest.
        PARISAX_RETURN_IF_ERROR(source_->AppendSeries(values, count));
        break;
      case Algorithm::kAdsPlus:
        return Status::Internal(
            "ADS+ append slipped past the capability gate");
      case Algorithm::kParis:
      case Algorithm::kParisPlus:
        PARISAX_RETURN_IF_ERROR(
            paris_->Append(values, count, pool_.get(), &touched));
        break;
      case Algorithm::kMessi:
        PARISAX_RETURN_IF_ERROR(
            messi_->Append(values, count, pool_.get(), &touched));
        break;
    }
  }

  series_count_.fetch_add(count, std::memory_order_acq_rel);
  append_epoch_.fetch_add(1, std::memory_order_acq_rel);

  report.total_series = series_count();
  report.touched_subtrees = touched.size();
  report.wall_seconds = wall.ElapsedSeconds();
  KickCompactor();
  return report;
}

void Engine::StartCompactorIfEnabled() {
  if (!options_.background_compaction) return;
  if (!capabilities().background_compaction) return;
  // LeafStorage readback is not verified for concurrent use with a
  // fold's leaf collection, so ParIS+ engines that materialized leaves
  // on disk keep compaction synchronous (Save/Compact fold under the
  // write gate instead).
  const bool safe =
      messi_ != nullptr ||
      (paris_ != nullptr && paris_->leaf_storage() == nullptr);
  if (!safe) return;
  compactor_ = std::thread([this] { CompactorLoop(); });
  // A restored chain can start life over the trigger; fold it without
  // waiting for the first append.
  KickCompactor();
}

void Engine::StopCompactor() {
  if (!compactor_.joinable()) return;
  {
    MutexLock lock(&compactor_mu_);
    compactor_stop_ = true;
  }
  compactor_cv_.NotifyAll();
  compactor_.join();
}

void Engine::KickCompactor() {
  if (!compactor_.joinable()) return;
  {
    MutexLock lock(&compactor_mu_);
    compactor_kick_ = true;
  }
  compactor_cv_.NotifyOne();
}

void Engine::CompactorLoop() {
  for (;;) {
    {
      MutexLock lock(&compactor_mu_);
      while (!compactor_stop_ && !compactor_kick_) {
        compactor_cv_.Wait(compactor_mu_);
      }
      if (compactor_stop_) return;
      compactor_kick_ = false;
      // A pass that failed parks the thread: state is still correct
      // (folds publish all-or-nothing), but retrying a deterministic
      // failure forever would burn a core.
      if (!compactor_error_.ok()) continue;
    }
    const Status pass = CompactionPass();
    if (!pass.ok()) {
      MutexLock lock(&compactor_mu_);
      compactor_error_ = pass;
    }
  }
}

Status Engine::CompactionPass() {
  // Serialize with appends and saves so the compare-and-publish folds
  // below cannot race another publication (and thus never discard).
  MutexLock append_lock(&append_mu_);
  InlineExecutor inline_exec;
  for (;;) {
    const auto snap =
        messi_ != nullptr ? messi_->serving() : paris_->serving();
    if (snap->segments.size() <
        static_cast<size_t>(options_.compaction_trigger_segments)) {
      return Status::OK();
    }
    const size_t seg_series = snap->segment_series();
    // Replay budget: once the unfolded tail outgrows the budget, a
    // major fold rebases everything (keeps restart replay and query
    // merge width bounded). Budget 0 defers entirely to the size-tier
    // rule.
    const uint64_t budget =
        static_cast<uint64_t>(options_.replay_budget_series);
    const bool over_budget = budget > 0 && seg_series > budget;
    bool ok = false;
    if (!over_budget &&
        static_cast<double>(seg_series) * options_.size_tier_ratio <
            static_cast<double>(snap->base_count)) {
      // Minor: the tail is small relative to the base — merging the
      // run into one segment is cheap and keeps the base untouched.
      PARISAX_ASSIGN_OR_RETURN(
          ok, messi_ != nullptr
                  ? messi_->MergeSegmentRun(snap, snap->segments.size(),
                                            &inline_exec)
                  : paris_->MergeSegmentRun(snap, snap->segments.size(),
                                            &inline_exec));
    } else {
      // Major: fold everything into a fresh base.
      PARISAX_ASSIGN_OR_RETURN(
          ok, messi_ != nullptr
                  ? messi_->FoldSegments(snap, snap->segments.size(),
                                         &inline_exec)
                  : paris_->FoldSegments(snap, snap->segments.size(),
                                         &inline_exec));
    }
    if (!ok) {
      return Status::Internal(
          "compaction fold discarded while the append mutex was held");
    }
    compaction_count_.fetch_add(1, std::memory_order_acq_rel);
  }
}

QueryService* Engine::query_service() {
  MutexLock lock(&service_mu_);
  if (service_ == nullptr) {
    QueryServiceOptions sopts;
    sopts.num_threads = options_.num_threads;
    sopts.policy = SchedulingPolicy::kAuto;
    // Engine options were validated at build time, so Create cannot
    // fail here.
    service_ = std::move(QueryService::Create(this, sopts).value());
  }
  return service_.get();
}

}  // namespace parisax
