#include "core/engine.h"

#include <sstream>

#include "io/mmap_source.h"
#include "persist/snapshot.h"
#include "scan/ucr_scan.h"
#include "serve/query_service.h"
#include "util/timer.h"

namespace parisax {

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kBruteForce:
      return "brute";
    case Algorithm::kUcrSerial:
      return "ucr";
    case Algorithm::kUcrParallel:
      return "ucr-p";
    case Algorithm::kAdsPlus:
      return "ads+";
    case Algorithm::kParis:
      return "paris";
    case Algorithm::kParisPlus:
      return "paris+";
    case Algorithm::kMessi:
      return "messi";
  }
  return "unknown";
}

Result<Algorithm> ParseAlgorithm(const std::string& name) {
  if (name == "brute") return Algorithm::kBruteForce;
  if (name == "ucr") return Algorithm::kUcrSerial;
  if (name == "ucr-p") return Algorithm::kUcrParallel;
  if (name == "ads+" || name == "ads") return Algorithm::kAdsPlus;
  if (name == "paris") return Algorithm::kParis;
  if (name == "paris+") return Algorithm::kParisPlus;
  if (name == "messi") return Algorithm::kMessi;
  return Status::InvalidArgument("unknown algorithm: " + name);
}

const char* SchedulingPolicyName(SchedulingPolicy policy) {
  switch (policy) {
    case SchedulingPolicy::kThroughput:
      return "throughput";
    case SchedulingPolicy::kLatency:
      return "latency";
    case SchedulingPolicy::kAuto:
      return "auto";
  }
  return "unknown";
}

Result<SchedulingPolicy> ParseSchedulingPolicy(const std::string& name) {
  if (name == "throughput") return SchedulingPolicy::kThroughput;
  if (name == "latency") return SchedulingPolicy::kLatency;
  if (name == "auto") return SchedulingPolicy::kAuto;
  return Status::InvalidArgument("unknown scheduling policy: " + name);
}

namespace {

Status ValidateOptions(const EngineOptions& options) {
  if (options.num_threads < 1) {
    return Status::InvalidArgument("num_threads must be positive");
  }
  if (options.tree.segments < 1 || options.tree.segments > kMaxSegments) {
    return Status::InvalidArgument("tree.segments must be in [1, 16]");
  }
  if (options.tree.leaf_capacity == 0) {
    return Status::InvalidArgument("tree.leaf_capacity must be positive");
  }
  if (options.batch_series == 0 || options.chunk_series == 0) {
    return Status::InvalidArgument("batch/chunk sizes must be positive");
  }
  return Status::OK();
}

}  // namespace

Engine::Engine(const EngineOptions& options) : options_(options) {
  pool_ = std::make_unique<ThreadPool>(options_.num_threads);
}

Engine::~Engine() {
  // The service's workers reference the indexes and the pool, and some
  // members (the wrapped indexes) are declared after service_ and would
  // otherwise be destroyed first; stop the workers before any of them
  // goes away.
  service_.reset();
}

Result<std::unique_ptr<Engine>> Engine::BuildInMemory(
    const Dataset* dataset, const EngineOptions& options) {
  PARISAX_RETURN_IF_ERROR(ValidateOptions(options));
  auto engine = std::unique_ptr<Engine>(new Engine(options));
  engine->dataset_ = dataset;
  engine->series_length_ = dataset->length();
  engine->series_count_ = dataset->count();
  EngineOptions& opts = engine->options_;
  if (opts.tree.series_length == 0) {
    opts.tree.series_length = dataset->length();
  }
  if (opts.tree.series_length != dataset->length()) {
    return Status::InvalidArgument(
        "tree.series_length does not match the dataset");
  }

  WallTimer wall;
  std::ostringstream details;
  switch (opts.algorithm) {
    case Algorithm::kBruteForce:
    case Algorithm::kUcrSerial:
    case Algorithm::kUcrParallel:
      details << "scan engine, no index";
      break;
    case Algorithm::kAdsPlus: {
      AdsBuildOptions build;
      build.tree = opts.tree;
      PARISAX_ASSIGN_OR_RETURN(engine->ads_,
                               AdsIndex::BuildInMemory(dataset, build));
      engine->build_report_.tree = engine->ads_->build_stats().tree;
      details << "ads+ serial build, cpu="
              << engine->ads_->build_stats().cpu_seconds << "s";
      break;
    }
    case Algorithm::kParis:
    case Algorithm::kParisPlus: {
      ParisBuildOptions build;
      build.num_workers = opts.num_threads;
      build.plus_mode = opts.algorithm == Algorithm::kParisPlus;
      build.batch_series = opts.batch_series;
      build.batches_per_round = opts.batches_per_round;
      build.tree = opts.tree;
      PARISAX_ASSIGN_OR_RETURN(engine->paris_,
                               ParisIndex::BuildInMemory(dataset, build));
      const ParisBuildStats& bs = engine->paris_->build_stats();
      engine->build_report_.tree = bs.tree;
      details << "paris in-memory build, stage3=" << bs.stage3_wall_seconds
              << "s summarize_cpu=" << bs.summarize_cpu_seconds
              << "s tree_cpu=" << bs.tree_cpu_seconds << "s";
      break;
    }
    case Algorithm::kMessi: {
      MessiBuildOptions build;
      build.num_workers = opts.num_threads;
      build.chunk_series = opts.chunk_series;
      build.locked_buffers = opts.locked_buffers;
      build.tree = opts.tree;
      PARISAX_ASSIGN_OR_RETURN(
          engine->messi_,
          MessiIndex::Build(dataset, build, engine->pool_.get()));
      const MessiBuildStats& bs = engine->messi_->build_stats();
      engine->build_report_.tree = bs.tree;
      details << "messi build, summarize=" << bs.summarize_wall_seconds
              << "s tree=" << bs.tree_wall_seconds << "s";
      break;
    }
  }
  engine->build_report_.wall_seconds = wall.ElapsedSeconds();
  engine->build_report_.details = details.str();
  return engine;
}

Result<std::unique_ptr<Engine>> Engine::BuildFromFile(
    const std::string& dataset_path, const EngineOptions& options) {
  PARISAX_RETURN_IF_ERROR(ValidateOptions(options));
  auto engine = std::unique_ptr<Engine>(new Engine(options));
  engine->dataset_path_ = dataset_path;
  DatasetFileInfo info;
  PARISAX_ASSIGN_OR_RETURN(info, ReadDatasetInfo(dataset_path));
  engine->series_length_ = info.length;
  engine->series_count_ = info.count;
  EngineOptions& opts = engine->options_;
  if (opts.tree.series_length == 0) opts.tree.series_length = info.length;
  if (opts.tree.series_length != info.length) {
    return Status::InvalidArgument(
        "tree.series_length does not match the dataset file");
  }
  if (opts.leaf_storage_path.empty()) {
    opts.leaf_storage_path = dataset_path + ".leaves";
  }

  WallTimer wall;
  std::ostringstream details;
  switch (opts.algorithm) {
    case Algorithm::kBruteForce:
    case Algorithm::kUcrParallel:
    case Algorithm::kMessi:
      return Status::NotSupported(
          std::string(AlgorithmName(opts.algorithm)) +
          " is an in-memory engine; use BuildInMemory");
    case Algorithm::kUcrSerial:
      details << "on-disk scan engine, no index";
      break;
    case Algorithm::kAdsPlus: {
      AdsBuildOptions build;
      build.tree = opts.tree;
      build.batch_series = opts.batch_series;
      build.raw_profile = opts.build_profile;
      build.leaf_storage_path = opts.leaf_storage_path;
      build.leaf_write_mbps = opts.leaf_write_mbps;
      PARISAX_ASSIGN_OR_RETURN(
          engine->ads_,
          AdsIndex::BuildFromFile(dataset_path, build, opts.query_profile));
      const AdsBuildStats& bs = engine->ads_->build_stats();
      engine->build_report_.tree = bs.tree;
      details << "ads+ on-disk build, read=" << bs.read_seconds
              << "s cpu=" << bs.cpu_seconds << "s write=" << bs.write_seconds
              << "s";
      break;
    }
    case Algorithm::kParis:
    case Algorithm::kParisPlus: {
      ParisBuildOptions build;
      build.num_workers = opts.num_threads;
      build.plus_mode = opts.algorithm == Algorithm::kParisPlus;
      build.batch_series = opts.batch_series;
      build.batches_per_round = opts.batches_per_round;
      build.tree = opts.tree;
      build.raw_profile = opts.build_profile;
      build.leaf_storage_path = opts.leaf_storage_path;
      build.leaf_write_mbps = opts.leaf_write_mbps;
      PARISAX_ASSIGN_OR_RETURN(
          engine->paris_,
          ParisIndex::BuildFromFile(dataset_path, build,
                                    opts.query_profile));
      const ParisBuildStats& bs = engine->paris_->build_stats();
      engine->build_report_.tree = bs.tree;
      details << "paris on-disk build, read=" << bs.read_wall_seconds
              << "s stage3=" << bs.stage3_wall_seconds
              << "s final_flush=" << bs.final_flush_wall_seconds << "s";
      break;
    }
  }
  engine->build_report_.wall_seconds = wall.ElapsedSeconds();
  engine->build_report_.details = details.str();
  return engine;
}

Result<std::unique_ptr<Engine>> Engine::Open(
    const std::string& snapshot_path, const std::string& data_path,
    const EngineOptions& options) {
  PARISAX_RETURN_IF_ERROR(ValidateOptions(options));
  SnapshotInfo info;
  PARISAX_ASSIGN_OR_RETURN(info, ReadSnapshotInfo(snapshot_path));

  auto engine = std::unique_ptr<Engine>(new Engine(options));
  engine->dataset_path_ = data_path;
  engine->series_length_ = info.tree.series_length;
  engine->series_count_ = info.series_count;
  EngineOptions& opts = engine->options_;
  opts.tree = info.tree;

  std::unique_ptr<MmapSource> source;
  PARISAX_ASSIGN_OR_RETURN(source, MmapSource::Open(data_path));

  WallTimer wall;
  std::ostringstream details;
  switch (info.kind) {
    case SnapshotKind::kMessi: {
      opts.algorithm = Algorithm::kMessi;
      PARISAX_ASSIGN_OR_RETURN(
          engine->messi_,
          LoadMessiIndex(snapshot_path, std::move(source),
                         engine->pool_.get()));
      engine->build_report_.tree = engine->messi_->build_stats().tree;
      break;
    }
    case SnapshotKind::kParis: {
      // The snapshot records whether ParIS or ParIS+ built it; the query
      // machinery is identical, the label matters for reporting.
      opts.algorithm =
          info.algorithm == static_cast<uint8_t>(Algorithm::kParisPlus)
              ? Algorithm::kParisPlus
              : Algorithm::kParis;
      PARISAX_ASSIGN_OR_RETURN(
          engine->paris_,
          LoadParisIndex(snapshot_path, std::move(source),
                         engine->pool_.get()));
      engine->build_report_.tree = engine->paris_->build_stats().tree;
      break;
    }
  }
  engine->build_report_.wall_seconds = wall.ElapsedSeconds();
  details << AlgorithmName(opts.algorithm)
          << " restored from snapshot, raw data mmap-ed from " << data_path;
  engine->build_report_.details = details.str();
  return engine;
}

Status Engine::Save(const std::string& snapshot_path) {
  SnapshotSaveOptions sopts;
  sopts.algorithm = static_cast<uint8_t>(options_.algorithm);
  // Snapshot serialization fans out over the shared pool; take the same
  // lock exact queries take so Save can run while the engine serves.
  std::lock_guard<std::mutex> lock(pool_mu_);
  if (messi_ != nullptr) {
    return SaveIndex(*messi_, snapshot_path, pool_.get(), sopts);
  }
  if (paris_ != nullptr) {
    return SaveIndex(*paris_, snapshot_path, pool_.get(), sopts);
  }
  return Status::NotSupported(
      std::string(AlgorithmName(options_.algorithm)) +
      " does not support snapshots (only MESSI and ParIS/ParIS+ do)");
}

Status Engine::CheckQuery(SeriesView query) const {
  if (query.size() != series_length_) {
    return Status::InvalidArgument("query length does not match the data");
  }
  return Status::OK();
}

bool Engine::UsesSharedPool(const SearchRequest& request) const {
  if (request.approximate) return false;  // leaf probe, no fan-out
  switch (options_.algorithm) {
    case Algorithm::kUcrParallel:
    case Algorithm::kParis:
    case Algorithm::kParisPlus:
    case Algorithm::kMessi:
      return true;
    default:
      return false;
  }
}

Result<SearchResponse> Engine::Search(SeriesView query,
                                      const SearchRequest& request) {
  if (!UsesSharedPool(request)) {
    return Search(query, request, pool_.get());
  }
  std::lock_guard<std::mutex> lock(pool_mu_);
  return Search(query, request, pool_.get());
}

Result<SearchResponse> Engine::Search(SeriesView query,
                                      const SearchRequest& request,
                                      Executor* exec) {
  PARISAX_RETURN_IF_ERROR(CheckQuery(query));
  if (request.k == 0) return Status::InvalidArgument("k must be positive");

  SearchResponse response;
  WallTimer timer;
  const Algorithm algo = options_.algorithm;

  // kNN beyond 1 is implemented for brute force, UCR-p and MESSI.
  if (request.k > 1 && algo != Algorithm::kBruteForce &&
      algo != Algorithm::kMessi && algo != Algorithm::kUcrParallel) {
    return Status::NotSupported(
        "k > 1 requires brute force, ucr-p or MESSI");
  }
  // No engine implements k-NN under DTW; reject instead of silently
  // answering 1-NN.
  if (request.k > 1 && request.dtw) {
    return Status::NotSupported("k > 1 DTW search is not implemented");
  }
  // DTW is implemented for the scans and MESSI.
  if (request.dtw &&
      (algo == Algorithm::kAdsPlus || algo == Algorithm::kParis ||
       algo == Algorithm::kParisPlus)) {
    return Status::NotSupported("DTW search requires a scan or MESSI");
  }
  if (request.approximate && (algo == Algorithm::kBruteForce ||
                              algo == Algorithm::kUcrSerial ||
                              algo == Algorithm::kUcrParallel)) {
    return Status::NotSupported("approximate search requires an index");
  }

  switch (algo) {
    case Algorithm::kBruteForce: {
      if (request.dtw) {
        response.neighbors.push_back(
            BruteForceDtwNn(*dataset_, query, request.dtw_band));
      } else if (request.k > 1) {
        response.neighbors =
            BruteForceKnn(*dataset_, query, request.k, options_.kernel);
      } else {
        response.neighbors.push_back(
            BruteForceNn(*dataset_, query, options_.kernel));
      }
      break;
    }
    case Algorithm::kUcrSerial: {
      if (dataset_ != nullptr) {
        ScanStats scan;
        response.neighbors.push_back(
            request.dtw
                ? DtwScanSerial(*dataset_, query, request.dtw_band, &scan)
                : UcrScanSerial(*dataset_, query, &scan, options_.kernel));
        response.stats.real_dist_calcs = scan.distance_calcs;
      } else {
        if (request.dtw) {
          return Status::NotSupported("on-disk DTW scan is not implemented");
        }
        ScanStats scan;
        Neighbor nn;
        PARISAX_ASSIGN_OR_RETURN(
            nn, UcrScanDisk(dataset_path_, options_.query_profile, query,
                            options_.batch_series, &scan, options_.kernel));
        response.neighbors.push_back(nn);
        response.stats.real_dist_calcs = scan.distance_calcs;
      }
      break;
    }
    case Algorithm::kUcrParallel: {
      ScanStats scan;
      if (request.dtw) {
        response.neighbors.push_back(DtwScanParallel(
            *dataset_, query, request.dtw_band, exec, &scan));
      } else if (request.k > 1) {
        response.neighbors = UcrKnnParallel(*dataset_, query, request.k,
                                            exec, &scan, options_.kernel);
      } else {
        response.neighbors.push_back(UcrScanParallel(
            *dataset_, query, exec, &scan, options_.kernel));
      }
      response.stats.real_dist_calcs = scan.distance_calcs;
      break;
    }
    case Algorithm::kAdsPlus: {
      Neighbor nn;
      if (request.approximate) {
        PARISAX_ASSIGN_OR_RETURN(
            nn, ads_->SearchApproximate(query, &response.stats));
      } else {
        AdsQueryOptions qopts;
        qopts.kernel = options_.kernel;
        PARISAX_ASSIGN_OR_RETURN(
            nn, ads_->SearchExact(query, qopts, &response.stats));
      }
      response.neighbors.push_back(nn);
      break;
    }
    case Algorithm::kParis:
    case Algorithm::kParisPlus: {
      Neighbor nn;
      if (request.approximate) {
        PARISAX_ASSIGN_OR_RETURN(
            nn, paris_->SearchApproximate(query, &response.stats));
      } else {
        ParisQueryOptions qopts;
        qopts.num_workers = exec->num_threads();
        qopts.kernel = options_.kernel;
        PARISAX_ASSIGN_OR_RETURN(
            nn, paris_->SearchExact(query, qopts, exec, &response.stats));
      }
      response.neighbors.push_back(nn);
      break;
    }
    case Algorithm::kMessi: {
      MessiQueryOptions qopts;
      qopts.num_workers = exec->num_threads();
      qopts.num_queues = options_.num_queues;
      qopts.kernel = options_.kernel;
      qopts.dtw_band = request.dtw_band;
      if (request.approximate) {
        Neighbor nn;
        PARISAX_ASSIGN_OR_RETURN(
            nn, messi_->SearchApproximate(query, &response.stats));
        response.neighbors.push_back(nn);
      } else if (request.dtw) {
        Neighbor nn;
        PARISAX_ASSIGN_OR_RETURN(
            nn, messi_->SearchExactDtw(query, qopts, exec,
                                       &response.stats));
        response.neighbors.push_back(nn);
      } else if (request.k > 1) {
        PARISAX_ASSIGN_OR_RETURN(
            response.neighbors,
            messi_->SearchKnn(query, request.k, qopts, exec,
                              &response.stats));
      } else {
        Neighbor nn;
        PARISAX_ASSIGN_OR_RETURN(
            nn, messi_->SearchExact(query, qopts, exec,
                                    &response.stats));
        response.neighbors.push_back(nn);
      }
      break;
    }
  }
  response.stats.total_seconds = timer.ElapsedSeconds();
  return response;
}

QueryService* Engine::query_service() {
  std::lock_guard<std::mutex> lock(service_mu_);
  if (service_ == nullptr) {
    QueryServiceOptions sopts;
    sopts.num_threads = options_.num_threads;
    sopts.policy = SchedulingPolicy::kAuto;
    // Engine options were validated at build time, so Create cannot
    // fail here.
    service_ = std::move(QueryService::Create(this, sopts).value());
  }
  return service_.get();
}

std::future<Result<SearchResponse>> Engine::Submit(
    SeriesView query, const SearchRequest& request) {
  return query_service()->Submit(query, request);
}

Result<std::vector<SearchResponse>> Engine::SearchBatch(
    const std::vector<SeriesView>& queries, const SearchRequest& request) {
  return query_service()->SearchBatch(queries, request);
}

}  // namespace parisax
