// Fundamental value and view types shared by every parisax module.
#ifndef PARISAX_CORE_TYPES_H_
#define PARISAX_CORE_TYPES_H_

#include <cstddef>
#include <cstdint>
#include <span>

namespace parisax {

/// Data series element type. The systems reproduced here (ParIS/MESSI, and
/// the iSAX family before them) all operate on 32-bit floats.
using Value = float;

/// Read-only view of one data series (length = number of points).
using SeriesView = std::span<const Value>;

/// Mutable view of one data series.
using MutableSeriesView = std::span<Value>;

/// Index of a series within a dataset (supports collections > 4B series).
using SeriesId = uint64_t;

/// Result of a nearest-neighbor search: the matching series and its
/// distance to the query. Distances throughout parisax are *squared*
/// Euclidean (or squared-ED-equivalent DTW) unless a function says
/// otherwise; callers take sqrt at the API boundary.
struct Neighbor {
  SeriesId id = 0;
  float distance_sq = 0.0f;

  friend bool operator==(const Neighbor&, const Neighbor&) = default;
};

}  // namespace parisax

#endif  // PARISAX_CORE_TYPES_H_
