// parisax public facade.
//
// Engine wraps every similarity-search strategy in the repository --
// brute force, the UCR Suite scans, ADS+, ParIS, ParIS+ and MESSI --
// behind a single build/search API so applications (and the examples/)
// can switch algorithms with one option.
//
// The data plane is described by a SourceSpec: where the raw series
// live (adopted in memory, borrowed, memory-mapped, or streamed through
// a simulated device). The engine *owns* the materialized source, so
// there is no dataset-lifetime footgun unless the caller explicitly
// borrows. What an engine can do (max k, DTW, approximate probes,
// snapshots, streamed builds) is a queryable EngineCapabilities value
// derived from one table -- every unsupported-request rejection comes
// from it.
//
// Typical use:
//   parisax::EngineOptions options;
//   options.algorithm = parisax::Algorithm::kMessi;
//   auto engine = parisax::Engine::Build(
//       parisax::SourceSpec::InMemory(std::move(dataset)), options);
//   auto response = (*engine)->Search(query, {});
//   // response->neighbors[0] is the exact nearest neighbor.
#ifndef PARISAX_CORE_ENGINE_H_
#define PARISAX_CORE_ENGINE_H_

#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/types.h"
#include "dist/euclidean.h"
#include "index/ads_index.h"
#include "index/query_stats.h"
#include "index/raw_source.h"
#include "index/tree.h"
#include "io/dataset.h"
#include "io/sim_disk.h"
#include "messi/messi_index.h"
#include "paris/paris_index.h"
#include "util/status.h"
#include "util/threading.h"

namespace parisax {

/// Similarity-search strategies available through Engine.
enum class Algorithm {
  kBruteForce,   ///< full scan, no early abandoning (correctness oracle)
  kUcrSerial,    ///< UCR Suite: serial early-abandoning scan
  kUcrParallel,  ///< UCR Suite-p: parallel scan, shared BSF
  kAdsPlus,      ///< ADS+: serial iSAX index + SIMS exact search
  kParis,        ///< ParIS: parallel index, stage-3 construction bursts
  kParisPlus,    ///< ParIS+: ParIS with fully overlapped construction
  kMessi,        ///< MESSI: in-memory parallel index, tree-based search
};

/// Short lowercase name ("messi", "paris+", ...).
const char* AlgorithmName(Algorithm algorithm);

/// Parses a name produced by AlgorithmName.
Result<Algorithm> ParseAlgorithm(const std::string& name);

/// What an engine can do. One static table per algorithm (see
/// AlgorithmCapabilities), narrowed per engine instance by the source it
/// was built over (Engine::capabilities). CheckQuery, Save and Build
/// derive every typed kNotSupported rejection from this struct -- there
/// are no per-call-site whitelists.
struct EngineCapabilities {
  /// Largest supported k for exact kNN searches (1: only 1-NN).
  size_t max_k = 1;
  /// Exact search under banded DTW.
  bool dtw = false;
  /// k > 1 under DTW (currently unimplemented everywhere).
  bool dtw_knn = false;
  /// Approximate (leaf-probe) search.
  bool approximate = false;
  /// Engine::Save / Engine::Open snapshot support.
  bool snapshot = false;
  /// Can build from a streamed, non-addressable source (the paper's
  /// on-disk pipeline). Every algorithm builds over addressable
  /// (in-memory or mmap) sources.
  bool streaming_build = false;
};

/// The per-algorithm capability table (source-independent limits).
const EngineCapabilities& AlgorithmCapabilities(Algorithm algorithm);

/// How the serve layer schedules concurrent queries over the shared
/// worker pool (see serve/query_service.h).
enum class SchedulingPolicy {
  /// Whole-query-per-worker: each query runs serially on one serve
  /// worker, many queries in flight at once. Maximizes queries/sec.
  kThroughput,
  /// Every query fans out over the full thread pool (the paper's
  /// intra-query parallelism); queries are serialized on the pool.
  /// Minimizes single-query latency.
  kLatency,
  /// Per-query choice by a cost heuristic: expensive queries take the
  /// parallel path when the service is otherwise idle, everything else
  /// runs whole-query-per-worker.
  kAuto,
};

/// Short lowercase name ("throughput", "latency", "auto").
const char* SchedulingPolicyName(SchedulingPolicy policy);

/// Parses a name produced by SchedulingPolicyName.
Result<SchedulingPolicy> ParseSchedulingPolicy(const std::string& name);

class QueryService;

struct EngineOptions {
  Algorithm algorithm = Algorithm::kMessi;
  /// Worker threads for parallel builds and queries.
  int num_threads = 4;
  /// Index shape (segments, leaf capacity). `tree.series_length == 0`
  /// means "take it from the data".
  SaxTreeOptions tree = {.segments = 16, .leaf_capacity = 128,
                         .series_length = 0};
  /// Device model for build-time sequential reads of a SourceSpec::File
  /// source.
  DiskProfile build_profile = DiskProfile::Instant();
  /// Device model for query-time raw-data reads of a SourceSpec::File
  /// source.
  DiskProfile query_profile = DiskProfile::Instant();
  /// Leaf materialization file for streamed (on-disk) index builds;
  /// defaults to "<dataset path>.leaves".
  std::string leaf_storage_path;
  /// Metered leaf-write throughput (<= 0: unmetered).
  double leaf_write_mbps = 0.0;
  /// Raw-data-buffer capacity in series (streamed pipelines).
  size_t batch_series = 8192;
  /// ParIS "memory full" trigger, in batches.
  size_t batches_per_round = 4;
  /// MESSI Stage-1 chunk size in series.
  size_t chunk_series = 4096;
  /// MESSI footnote-2 ablation: lock-per-buffer instead of per-thread
  /// buffer parts.
  bool locked_buffers = false;
  /// MESSI shared priority queues (0: one per worker).
  int num_queues = 0;
  /// Distance kernel selection (D4 ablation).
  KernelPolicy kernel = KernelPolicy::kAuto;
};

/// Describes where an engine's raw series live. Engine::Build
/// materializes the spec into an owned RawSeriesSource.
class SourceSpec {
 public:
  /// Adopts an in-memory collection: the engine owns the moved-in data.
  static SourceSpec InMemory(Dataset dataset);

  /// Borrows a caller-owned collection; `dataset` must outlive the
  /// engine. Prefer InMemory or Mmap, which cannot dangle.
  static SourceSpec Borrowed(const Dataset* dataset);

  /// Memory-maps a dataset file (io/format.h layout): builds and queries
  /// run straight off the page cache, with no in-RAM copy of the
  /// collection. Addressable, so even MESSI builds over it.
  static SourceSpec Mmap(std::string path);

  /// Streams a dataset file through a simulated storage device (the
  /// paper's on-disk pipelines). Sequential passes are metered with
  /// EngineOptions::build_profile (query_profile for the scan engines,
  /// which stream at query time); random query-time fetches with
  /// EngineOptions::query_profile.
  static SourceSpec File(std::string path);

  /// Adopts a caller-built source (custom residency).
  static SourceSpec Custom(std::unique_ptr<RawSeriesSource> source);

  SourceSpec(SourceSpec&&) = default;
  SourceSpec& operator=(SourceSpec&&) = default;

 private:
  friend class Engine;
  enum class Kind { kInMemory, kBorrowed, kMmap, kFile, kCustom };

  SourceSpec() = default;

  Kind kind_ = Kind::kBorrowed;
  std::unique_ptr<Dataset> dataset_;         // kInMemory
  const Dataset* borrowed_ = nullptr;        // kBorrowed
  std::string path_;                         // kMmap / kFile
  std::unique_ptr<RawSeriesSource> custom_;  // kCustom
};

struct SearchRequest {
  /// Number of nearest neighbors (bounded by capabilities().max_k).
  size_t k = 1;
  /// Return the approximate answer (index engines only): the best match
  /// within the query's approximate-match leaf.
  bool approximate = false;
  /// Search under banded DTW instead of ED (capabilities().dtw).
  bool dtw = false;
  /// Sakoe-Chiba radius in points for DTW searches.
  size_t dtw_band = 12;
};

struct SearchResponse {
  /// Ascending (squared distance, id). Exactly min(k, collection size)
  /// entries for exact searches.
  std::vector<Neighbor> neighbors;
  QueryStats stats;
};

/// Summary of an index build (empty tree stats for scan engines).
struct BuildReport {
  double wall_seconds = 0.0;
  TreeStats tree;
  /// Engine-specific breakdown, e.g. ParIS read/stage3/flush walls.
  std::string details;
};

class Engine {
 public:
  /// Builds a search engine over the described source. The engine owns
  /// the materialized source for its whole lifetime. Returns
  /// kNotSupported when the algorithm cannot build over the source's
  /// residency (see AlgorithmCapabilities().streaming_build).
  static Result<std::unique_ptr<Engine>> Build(SourceSpec spec,
                                               const EngineOptions& options);

  /// Deprecated shim: Build(SourceSpec::Borrowed(dataset), options).
  /// `dataset` must outlive the engine.
  static Result<std::unique_ptr<Engine>> BuildInMemory(
      const Dataset* dataset, const EngineOptions& options);

  /// Deprecated shim: Build(SourceSpec::File(dataset_path), options).
  static Result<std::unique_ptr<Engine>> BuildFromFile(
      const std::string& dataset_path, const EngineOptions& options);

  /// Restores an engine from a snapshot written by Save. `data_path` is
  /// the raw dataset file (WriteDataset format) the index was built
  /// over; it is memory-mapped, so queries run straight against the page
  /// cache instead of an in-RAM copy. The snapshot records which
  /// algorithm it holds and this overload accepts whatever is recorded.
  static Result<std::unique_ptr<Engine>> Open(
      const std::string& snapshot_path, const std::string& data_path);

  /// As above, with explicit options. `options.algorithm` is binding: if
  /// it does not match the snapshot's recorded algorithm, Open returns
  /// kInvalidArgument instead of silently proceeding.
  static Result<std::unique_ptr<Engine>> Open(
      const std::string& snapshot_path, const std::string& data_path,
      const EngineOptions& options);

  /// Writes the engine's index to `snapshot_path` (atomically: a temp
  /// file renamed into place). Requires capabilities().snapshot.
  /// Thread-safe against concurrent Search calls.
  Status Save(const std::string& snapshot_path);

  ~Engine();

  /// Answers one similarity-search query with the engine's own thread
  /// pool. Thread-safe: concurrent calls serialize on the pool (use the
  /// serve layer — Submit/SearchBatch — to actually overlap queries).
  Result<SearchResponse> Search(SeriesView query,
                                const SearchRequest& request = {});

  /// Answers one query on the given executor instead of the engine's
  /// pool. Re-entrant: any number of calls may run concurrently as long
  /// as each uses its own executor (e.g. per-thread InlineExecutors).
  /// The caller is responsible for the executor's own concurrency rules.
  Result<SearchResponse> Search(SeriesView query,
                                const SearchRequest& request,
                                Executor* exec);

  /// Asynchronously answers one query through the engine's query
  /// service (created on first use with the engine's options). The
  /// query values are copied, so the view only needs to live until
  /// Submit returns.
  std::future<Result<SearchResponse>> Submit(
      SeriesView query, const SearchRequest& request = {});

  /// Answers a batch of queries concurrently through the query service;
  /// responses are in query order. Fails on the first failing query.
  Result<std::vector<SearchResponse>> SearchBatch(
      const std::vector<SeriesView>& queries,
      const SearchRequest& request = {});

  /// The engine's query service, created on first use (num_threads
  /// serve workers, kAuto scheduling). Never null.
  QueryService* query_service();

  /// What this engine supports: the algorithm's table narrowed by the
  /// source it was built over (e.g. DTW is unavailable when the source
  /// is streamed). Every kNotSupported this engine returns is derived
  /// from this value.
  EngineCapabilities capabilities() const;

  Algorithm algorithm() const { return options_.algorithm; }
  const EngineOptions& options() const { return options_; }
  const BuildReport& build_report() const { return build_report_; }

  /// The wrapped indexes (null when the algorithm does not use them).
  const AdsIndex* ads_index() const { return ads_.get(); }
  const ParisIndex* paris_index() const { return paris_.get(); }
  const MessiIndex* messi_index() const { return messi_.get(); }

  /// The raw series the engine answers queries against (owned by the
  /// engine, directly or through its index).
  const RawSeriesSource& source() const { return *query_source_; }

  /// Points per series in the indexed collection.
  size_t series_length() const { return series_length_; }
  /// Series in the indexed collection (serve-layer cost heuristics).
  size_t series_count() const { return series_count_; }

 private:
  explicit Engine(const EngineOptions& options);

  static Result<std::unique_ptr<Engine>> OpenInternal(
      const std::string& snapshot_path, const std::string& data_path,
      const EngineOptions& options, bool enforce_algorithm);

  Status CheckQuery(SeriesView query, const SearchRequest& request) const;

  /// True when this request's path fans out over the shared pool (and
  /// must therefore hold pool_mu_ when run on it).
  bool UsesSharedPool(const SearchRequest& request) const;

  EngineOptions options_;
  size_t series_length_ = 0;
  size_t series_count_ = 0;
  std::unique_ptr<ThreadPool> pool_;
  /// Serializes parallel regions on pool_: ThreadPool::Run is not
  /// reentrant, so concurrent Search calls take turns on it.
  std::mutex pool_mu_;
  std::mutex service_mu_;
  std::unique_ptr<QueryService> service_;  // lazily created
  BuildReport build_report_;

  /// Scan engines own their source directly; index engines own it
  /// through the index. query_source_ always points at the live one.
  std::unique_ptr<RawSeriesSource> source_;
  const RawSeriesSource* query_source_ = nullptr;
  bool addressable_source_ = true;

  std::unique_ptr<AdsIndex> ads_;
  std::unique_ptr<ParisIndex> paris_;
  std::unique_ptr<MessiIndex> messi_;
};

}  // namespace parisax

#endif  // PARISAX_CORE_ENGINE_H_
