// parisax public facade.
//
// Engine wraps every similarity-search strategy in the repository --
// brute force, the UCR Suite scans, ADS+, ParIS, ParIS+ and MESSI --
// behind a single build/search API so applications (and the examples/)
// can switch algorithms with one option.
//
// The data plane is described by a SourceSpec: where the raw series
// live (adopted in memory, borrowed, memory-mapped, or streamed through
// a simulated device). The engine *owns* the materialized source, so
// there is no dataset-lifetime footgun unless the caller explicitly
// borrows. What an engine can do (max k, DTW, approximate probes,
// snapshots, streamed builds) is a queryable EngineCapabilities value
// derived from one table -- every unsupported-request rejection comes
// from it.
//
// Typical use:
//   parisax::EngineOptions options;
//   options.algorithm = parisax::Algorithm::kMessi;
//   auto engine = parisax::Engine::Build(
//       parisax::SourceSpec::InMemory(std::move(dataset)), options);
//   auto response = (*engine)->Search(query, {});
//   // response->neighbors[0] is the exact nearest neighbor.
#ifndef PARISAX_CORE_ENGINE_H_
#define PARISAX_CORE_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/search_backend.h"
#include "core/types.h"
#include "dist/euclidean.h"
#include "index/ads_index.h"
#include "index/query_stats.h"
#include "index/raw_source.h"
#include "index/segment.h"
#include "index/tree.h"
#include "io/dataset.h"
#include "io/sim_disk.h"
#include "messi/messi_index.h"
#include "paris/paris_index.h"
#include "util/cancellation.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/threading.h"

namespace parisax {

/// Similarity-search strategies available through Engine.
enum class Algorithm {
  kBruteForce,   ///< full scan, no early abandoning (correctness oracle)
  kUcrSerial,    ///< UCR Suite: serial early-abandoning scan
  kUcrParallel,  ///< UCR Suite-p: parallel scan, shared BSF
  kAdsPlus,      ///< ADS+: serial iSAX index + SIMS exact search
  kParis,        ///< ParIS: parallel index, stage-3 construction bursts
  kParisPlus,    ///< ParIS+: ParIS with fully overlapped construction
  kMessi,        ///< MESSI: in-memory parallel index, tree-based search
};

/// Short lowercase name ("messi", "paris+", ...).
const char* AlgorithmName(Algorithm algorithm);

/// Parses a name produced by AlgorithmName.
Result<Algorithm> ParseAlgorithm(const std::string& name);

/// The per-algorithm capability table (source-independent limits). The
/// EngineCapabilities struct itself lives in core/search_backend.h with
/// the rest of the serving-surface types.
const EngineCapabilities& AlgorithmCapabilities(Algorithm algorithm);

/// Where an engine's raw series live, as far as the capability model is
/// concerned. Mirrors the SourceSpec factories (a restored snapshot
/// counts as kMmap: its raw data is memory-mapped).
enum class SourceResidency {
  kOwnedMemory,     ///< SourceSpec::InMemory — adopted, growable
  kBorrowedMemory,  ///< SourceSpec::Borrowed — caller-owned, fixed
  kMmap,            ///< SourceSpec::Mmap / Engine::Open — page cache
  kStreamedFile,    ///< SourceSpec::File — simulated device
};

/// Short lowercase name ("in-memory", "borrowed", "mmap", "streamed").
const char* SourceResidencyName(SourceResidency residency);

/// The algorithm's capability row narrowed by source residency: the
/// function behind Engine::capabilities() for the standard SourceSpec
/// residencies, and the source of truth for docs/capabilities.md
/// (tools/gen_capability_docs.py dumps it, CI diffs the committed doc).
EngineCapabilities NarrowCapabilities(Algorithm algorithm,
                                      SourceResidency residency);

/// True when Engine::Build accepts the combination: a streamed
/// (non-addressable) source requires the algorithm's streaming_build.
/// The same rule Build applies at runtime, exposed for the generated
/// docs' `buildable` column.
bool CanBuildOver(Algorithm algorithm, SourceResidency residency);

struct EngineOptions {
  Algorithm algorithm = Algorithm::kMessi;
  /// Worker threads for parallel builds and queries.
  int num_threads = 4;
  /// Index shape (segments, leaf capacity). `tree.series_length == 0`
  /// means "take it from the data".
  SaxTreeOptions tree = {.segments = 16, .leaf_capacity = 128,
                         .series_length = 0};
  /// Device model for build-time sequential reads of a SourceSpec::File
  /// source.
  DiskProfile build_profile = DiskProfile::Instant();
  /// Device model for query-time raw-data reads of a SourceSpec::File
  /// source.
  DiskProfile query_profile = DiskProfile::Instant();
  /// Leaf materialization file for streamed (on-disk) index builds;
  /// defaults to "<dataset path>.leaves".
  std::string leaf_storage_path;
  /// Metered leaf-write throughput (<= 0: unmetered).
  double leaf_write_mbps = 0.0;
  /// Raw-data-buffer capacity in series (streamed pipelines).
  size_t batch_series = 8192;
  /// ParIS "memory full" trigger, in batches.
  size_t batches_per_round = 4;
  /// MESSI Stage-1 chunk size in series.
  size_t chunk_series = 4096;
  /// MESSI footnote-2 ablation: lock-per-buffer instead of per-thread
  /// buffer parts.
  bool locked_buffers = false;
  /// MESSI shared priority queues (0: one per worker).
  int num_queues = 0;
  /// Distance kernel selection (D4 ablation).
  KernelPolicy kernel = KernelPolicy::kAuto;
  /// Run the background compactor where
  /// capabilities().background_compaction allows it: an engine-owned
  /// thread that folds delta segments into the base index off the
  /// serving path, so query-side merge cost stays bounded under
  /// sustained appends.
  bool background_compaction = true;
  /// The compactor acts once the serving snapshot holds at least this
  /// many segments.
  size_t compaction_trigger_segments = 8;
  /// Replay-cost budget: once the segments jointly hold this many
  /// series, the compactor must fold them into the base (bounding how
  /// much segment data a restart would rehydrate from deltas). 0: no
  /// budget — the size-tiered rule below decides alone.
  size_t replay_budget_series = 0;
  /// Size-tiered pick: segments jointly holding fewer than
  /// base_count / size_tier_ratio series are merged into one segment
  /// (cheap, keeps the read-side fan-in small) instead of folded into
  /// the base (a full base rebuild).
  double size_tier_ratio = 4.0;
};

/// Describes where an engine's raw series live. Engine::Build
/// materializes the spec into an owned RawSeriesSource.
class SourceSpec {
 public:
  /// Adopts an in-memory collection: the engine owns the moved-in data.
  static SourceSpec InMemory(Dataset dataset);

  /// Borrows a caller-owned collection; `dataset` must outlive the
  /// engine. Prefer InMemory or Mmap, which cannot dangle.
  static SourceSpec Borrowed(const Dataset* dataset);

  /// Memory-maps a dataset file (io/format.h layout): builds and queries
  /// run straight off the page cache, with no in-RAM copy of the
  /// collection. Addressable, so even MESSI builds over it.
  static SourceSpec Mmap(std::string path);

  /// Streams a dataset file through a simulated storage device (the
  /// paper's on-disk pipelines). Sequential passes are metered with
  /// EngineOptions::build_profile (query_profile for the scan engines,
  /// which stream at query time); random query-time fetches with
  /// EngineOptions::query_profile.
  static SourceSpec File(std::string path);

  /// Adopts a caller-built source (custom residency).
  static SourceSpec Custom(std::unique_ptr<RawSeriesSource> source);

  SourceSpec(SourceSpec&&) = default;
  SourceSpec& operator=(SourceSpec&&) = default;

 private:
  friend class Engine;
  enum class Kind { kInMemory, kBorrowed, kMmap, kFile, kCustom };

  SourceSpec() = default;

  Kind kind_ = Kind::kBorrowed;
  std::unique_ptr<Dataset> dataset_;         // kInMemory
  const Dataset* borrowed_ = nullptr;        // kBorrowed
  std::string path_;                         // kMmap / kFile
  std::unique_ptr<RawSeriesSource> custom_;  // kCustom
};

/// Summary of an index build (empty tree stats for scan engines).
struct BuildReport {
  double wall_seconds = 0.0;
  TreeStats tree;
  /// Engine-specific breakdown, e.g. ParIS read/stage3/flush walls.
  std::string details;
};

class Engine : public SearchBackend {
 public:
  /// Builds a search engine over the described source. The engine owns
  /// the materialized source for its whole lifetime. Returns
  /// kNotSupported when the algorithm cannot build over the source's
  /// residency (see AlgorithmCapabilities().streaming_build).
  static Result<std::unique_ptr<Engine>> Build(SourceSpec spec,
                                               const EngineOptions& options);

  /// Restores an engine from a snapshot written by Save. `data_path` is
  /// the raw dataset file (WriteDataset format) the index was built
  /// over; it is memory-mapped, so queries run straight against the page
  /// cache instead of an in-RAM copy. The snapshot records which
  /// algorithm it holds and this overload accepts whatever is recorded.
  static Result<std::unique_ptr<Engine>> Open(
      const std::string& snapshot_path, const std::string& data_path);

  /// As above, with explicit options. `options.algorithm` is binding: if
  /// it does not match the snapshot's recorded algorithm, Open returns
  /// kInvalidArgument instead of silently proceeding.
  static Result<std::unique_ptr<Engine>> Open(
      const std::string& snapshot_path, const std::string& data_path,
      const EngineOptions& options);

  /// Writes the engine's index to `snapshot_path` (atomically: a temp
  /// file renamed into place). Requires capabilities().snapshot.
  /// Thread-safe against concurrent Search and Append calls.
  ///
  /// After Append calls, a Save to a *new* path writes an append-only
  /// delta — one serialized segment covering exactly the series
  /// appended since the previous head (and, for ParIS, their flat-SAX
  /// rows) — chained to the previous Save/Open file by header
  /// back-reference. Engine::Open restores the base and rehydrates the
  /// deltas as serving segments; Compact rewrites the chain into one
  /// full snapshot. A Save with no snapshot lineage, no appends since
  /// the last save, to a path the current chain already uses, with the
  /// chain at its maximum length (64 deltas), or after compaction
  /// folded past the previous head writes a full snapshot instead —
  /// Save never fails for lineage reasons, it just compacts.
  Status Save(const std::string& snapshot_path) override;

  /// Folds every live segment into the base index, then rewrites the
  /// engine's snapshot chain as one fresh full snapshot at
  /// `snapshot_path` (long-lived serving processes bound their chain
  /// length this way; the replaced chain files can then be deleted).
  /// Subsequent Saves chain deltas to the compacted file. This is the
  /// synchronous wrapper around what the background compactor does
  /// continuously.
  Status Compact(const std::string& snapshot_path) override;

  /// Incremental ingest: appends `batch` (same series length,
  /// z-normalized like the rest of the collection) to the engine's
  /// owned source, builds an immutable delta segment over just the new
  /// ids, and publishes it to the serving snapshot in one atomic epoch
  /// bump. Requires capabilities().append. Thread-safe — and for the
  /// index engines over addressable sources, *non-blocking for
  /// readers*: concurrent queries keep serving the snapshot they
  /// captured at entry while the append builds off to the side; the
  /// background compactor later folds segments into the base. Only
  /// scan engines and streamed sources still drain queries on the RW
  /// gate (their sources mutate in place).
  ///
  /// Failure contract: a file-backed source grows *before* the segment
  /// is built, so (a) if Append returns an error after the source grew,
  /// the serving snapshot is unchanged (nothing was published) but the
  /// source holds unindexed series — the engine should be discarded or
  /// reopened; (b) existing snapshots of a grown dataset file only open
  /// again once this engine Saves the matching delta (Open checks exact
  /// collection shape), so a process that dies between Append and Save
  /// pays a rebuild from the (intact, larger) dataset file. See
  /// docs/snapshot-format.md.
  Result<AppendReport> Append(const Value* values, size_t count) override;
  using SearchBackend::Append;  // the Dataset convenience overload

  /// Number of Append calls that have completed (monotonic). Each
  /// append publishes a new index epoch to queries atomically.
  uint64_t append_epoch() const override {
    return append_epoch_.load(std::memory_order_acquire);
  }

  /// Number of compaction actions (background passes and synchronous
  /// folds) that published a merged/folded snapshot. Monotonic;
  /// exported by the serving metrics layer.
  uint64_t compaction_count() const override {
    return compaction_count_.load(std::memory_order_acquire);
  }

  ~Engine() override;

  /// Answers one similarity-search query with the engine's own thread
  /// pool. Thread-safe: concurrent calls serialize on the pool (use the
  /// serve layer — Submit/SearchBatch — to actually overlap queries).
  Result<SearchResponse> Search(SeriesView query,
                                const SearchRequest& request = {}) override;

  /// Answers one query on the given executor instead of the engine's
  /// pool. Re-entrant: any number of calls may run concurrently as long
  /// as each uses its own executor (e.g. per-thread InlineExecutors).
  /// The caller is responsible for the executor's own concurrency rules.
  Result<SearchResponse> Search(SeriesView query, const SearchRequest& request,
                                Executor* exec) override;

  /// The engine's query service, created on first use (num_threads
  /// serve workers, kAuto scheduling). Never null.
  QueryService* query_service() override;

  /// What this engine supports: the algorithm's table narrowed by the
  /// source it was built over (e.g. DTW is unavailable when the source
  /// is streamed). Every kNotSupported this engine returns is derived
  /// from this value.
  EngineCapabilities capabilities() const override;

  Algorithm algorithm() const { return options_.algorithm; }
  const char* algorithm_name() const override {
    return AlgorithmName(options_.algorithm);
  }
  const EngineOptions& options() const { return options_; }
  /// The *initial* build/restore report; Append does not update it
  /// (post-append tree stats live on the index's build_stats(), read
  /// them without concurrent appends).
  const BuildReport& build_report() const { return build_report_; }

  /// The wrapped indexes (null when the algorithm does not use them).
  const AdsIndex* ads_index() const { return ads_.get(); }
  const ParisIndex* paris_index() const { return paris_.get(); }
  const MessiIndex* messi_index() const { return messi_.get(); }

  /// The raw series the engine answers queries against (owned by the
  /// engine, directly or through its index).
  const RawSeriesSource& source() const { return *query_source_; }

  /// Points per series in the indexed collection.
  size_t series_length() const override { return series_length_; }
  /// Series in the indexed collection (serve-layer cost heuristics).
  /// Grows under Append; safe to read concurrently.
  size_t series_count() const override {
    return series_count_.load(std::memory_order_acquire);
  }

 private:
  explicit Engine(const EngineOptions& options);

  static Result<std::unique_ptr<Engine>> OpenInternal(
      const std::string& snapshot_path, const std::string& data_path,
      const EngineOptions& options, bool enforce_algorithm);

  Status CheckQuery(SeriesView query, const SearchRequest& request) const;

  /// Fold-every-segment + full snapshot + lineage reset; caller holds
  /// append_mu_ and pool_mu_.
  Status SaveFullLocked(const std::string& snapshot_path)
      PARISAX_REQUIRES(append_mu_, pool_mu_);
  /// Folds every live segment into the base index; caller holds
  /// append_mu_ and pool_mu_ (the fold briefly takes the write side of
  /// index_gate_ to cover streamed sources and leaf storage).
  Status FoldAllLocked() PARISAX_REQUIRES(append_mu_, pool_mu_);
  /// The segment a delta snapshot serializes: ids [head, count). An
  /// existing segment with exactly that range is reused; otherwise the
  /// covering entries are re-sectioned into a fresh segment (merged
  /// segments may straddle the head). Caller holds append_mu_ and
  /// pool_mu_.
  Result<std::shared_ptr<const Segment>> DeltaSegmentLocked(
      const std::shared_ptr<const ServingState>& snap, uint64_t head)
      PARISAX_REQUIRES(append_mu_, pool_mu_);
  /// True when `snapshot_path` names a file of the current on-disk
  /// chain (or the chain cannot be walked): a delta must not overwrite
  /// those. Caller holds pool_mu_ and lineage_ is set.
  bool PathIsInLineageChain(const std::string& snapshot_path) const
      PARISAX_REQUIRES(pool_mu_);
  /// Re-reads the just-written head and installs it as the lineage the
  /// next Save chains to; caller holds pool_mu_.
  Status AdoptLineageHead(const std::string& snapshot_path)
      PARISAX_REQUIRES(pool_mu_);

  /// True when this request's path fans out over the shared pool (and
  /// must therefore hold pool_mu_ when run on it).
  bool UsesSharedPool(const SearchRequest& request) const;

  /// Background compaction machinery. The thread is started at the end
  /// of Build/Open (never before the index exists) and stopped first
  /// thing in the destructor.
  void StartCompactorIfEnabled();
  void StopCompactor() PARISAX_EXCLUDES(compactor_mu_);
  void KickCompactor() PARISAX_EXCLUDES(compactor_mu_);
  void CompactorLoop() PARISAX_EXCLUDES(compactor_mu_, append_mu_);
  /// One cost-policy pass: merge or fold the current segment run if the
  /// trigger is met. Holds append_mu_ (so nothing else publishes) but
  /// neither pool_mu_ nor index_gate_ — queries are never blocked.
  Status CompactionPass() PARISAX_EXCLUDES(append_mu_);

  EngineOptions options_;
  size_t series_length_ = 0;
  std::atomic<size_t> series_count_{0};
  std::unique_ptr<ThreadPool> pool_;
  /// The writer mutex: Append, Save, Compact and compactor passes hold
  /// it for their whole critical section, so every serving-snapshot
  /// publication is serialized and the snapshot cannot move under a
  /// Save. Queries never take it. Lock order: append_mu_ before
  /// pool_mu_ before index_gate_ (ranks kEngineAppend < kEnginePool <
  /// kIndexGate; KickCompactor also takes compactor_mu_ under it).
  Mutex append_mu_{"Engine::append_mu_", LockRank::kEngineAppend}
      PARISAX_ACQUIRED_BEFORE(compactor_mu_, pool_mu_, index_gate_);
  /// Serializes parallel regions on pool_: ThreadPool::Run is not
  /// reentrant, so concurrent Search calls take turns on it (and Save's
  /// serialization fan-out does too). Lock order: after append_mu_,
  /// before index_gate_.
  Mutex pool_mu_{"Engine::pool_mu_", LockRank::kEnginePool}
      PARISAX_ACQUIRED_BEFORE(index_gate_);
  /// The in-place-mutation RW gate: every query path holds it shared.
  /// Only writers that mutate state queries read in place — scan-engine
  /// and streamed-source appends, and synchronous fold-alls — take it
  /// exclusively; segment appends publish immutable state and leave it
  /// alone.
  SharedMutex index_gate_{"Engine::index_gate_", LockRank::kIndexGate};
  std::atomic<uint64_t> append_epoch_{0};
  std::atomic<uint64_t> compaction_count_{0};
  Mutex service_mu_{"Engine::service_mu_", LockRank::kServiceInit};
  /// Lazily created; the pointee is internally synchronized, only the
  /// pointer itself is guarded.
  std::unique_ptr<QueryService> service_ PARISAX_GUARDED_BY(service_mu_);
  BuildReport build_report_;

  /// Snapshot lineage: the chain head the next Save extends (set by
  /// Save, Compact and Open). Guarded by pool_mu_.
  struct SnapshotLineage {
    std::string head_path;
    uint32_t head_header_crc = 0;
    uint64_t head_series_count = 0;
    uint32_t head_depth = 0;  // 0: full snapshot, n: n-th delta
    /// Every file of the chain, base first (so Save can refuse to
    /// write a delta over a chain member without re-walking the disk).
    std::vector<std::string> chain_paths;
  };
  std::optional<SnapshotLineage> lineage_ PARISAX_GUARDED_BY(pool_mu_);

  /// Compactor thread state (compactor_mu_ guards the flags; the
  /// passes themselves synchronize through append_mu_).
  std::thread compactor_;
  Mutex compactor_mu_{"Engine::compactor_mu_", LockRank::kCompactor};
  CondVar compactor_cv_;
  bool compactor_stop_ PARISAX_GUARDED_BY(compactor_mu_) = false;
  bool compactor_kick_ PARISAX_GUARDED_BY(compactor_mu_) = false;
  /// First error a background pass hit (the pass publishes nothing on
  /// failure; the compactor parks itself and synchronous folds take
  /// over).
  Status compactor_error_ PARISAX_GUARDED_BY(compactor_mu_);

  /// Scan engines own their source directly; index engines own it
  /// through the index. query_source_ always points at the live one.
  std::unique_ptr<RawSeriesSource> source_;
  const RawSeriesSource* query_source_ = nullptr;
  bool addressable_source_ = true;

  std::unique_ptr<AdsIndex> ads_;
  std::unique_ptr<ParisIndex> paris_;
  std::unique_ptr<MessiIndex> messi_;
};

}  // namespace parisax

#endif  // PARISAX_CORE_ENGINE_H_
