#include "scan/ucr_scan.h"

#include <algorithm>
#include <limits>
#include <mutex>

#include "dist/dtw.h"
#include "index/knn_heap.h"
#include "io/reader.h"
#include "util/timer.h"

namespace parisax {

namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();

bool Improves(const Neighbor& candidate, const Neighbor& best) {
  return candidate.distance_sq < best.distance_sq ||
         (candidate.distance_sq == best.distance_sq &&
          candidate.id < best.id);
}

}  // namespace

Neighbor BruteForceNn(const Dataset& dataset, SeriesView query,
                      KernelPolicy kernel) {
  Neighbor best{0, kInf};
  for (SeriesId i = 0; i < dataset.count(); ++i) {
    const float d = SquaredEuclidean(query, dataset.series(i), kernel);
    if (Improves({i, d}, best)) best = {i, d};
  }
  return best;
}

std::vector<Neighbor> BruteForceKnn(const Dataset& dataset, SeriesView query,
                                    size_t k, KernelPolicy kernel) {
  std::vector<Neighbor> all;
  all.reserve(dataset.count());
  for (SeriesId i = 0; i < dataset.count(); ++i) {
    all.push_back({i, SquaredEuclidean(query, dataset.series(i), kernel)});
  }
  const size_t take = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + take, all.end(),
                    [](const Neighbor& a, const Neighbor& b) {
                      return a.distance_sq < b.distance_sq ||
                             (a.distance_sq == b.distance_sq && a.id < b.id);
                    });
  all.resize(take);
  return all;
}

Neighbor UcrScanSerial(const Dataset& dataset, SeriesView query,
                       ScanStats* stats, KernelPolicy kernel) {
  WallTimer timer;
  Neighbor best{0, kInf};
  uint64_t abandoned = 0;
  for (SeriesId i = 0; i < dataset.count(); ++i) {
    const float d = SquaredEuclideanEarlyAbandon(query, dataset.series(i),
                                                 best.distance_sq, kernel);
    if (d < best.distance_sq) {
      best = {i, d};
    } else {
      ++abandoned;
    }
  }
  if (stats != nullptr) {
    stats->distance_calcs += dataset.count();
    stats->abandoned += abandoned;
    stats->seconds += timer.ElapsedSeconds();
  }
  return best;
}

Neighbor UcrScanParallel(const Dataset& dataset, SeriesView query,
                         Executor* exec, ScanStats* stats,
                         KernelPolicy kernel) {
  WallTimer timer;
  AtomicMinFloat bsf(kInf);
  std::mutex best_mu;
  Neighbor best{0, kInf};
  std::atomic<uint64_t> abandoned{0};

  constexpr size_t kGrain = 256;
  WorkCounter counter(dataset.count());
  exec->Run([&](int) {
    uint64_t local_abandoned = 0;
    size_t begin, end;
    while (counter.NextBatch(kGrain, &begin, &end)) {
      for (SeriesId i = begin; i < end; ++i) {
        const float bound = bsf.Load();
        const float d = SquaredEuclideanEarlyAbandon(query, dataset.series(i),
                                                     bound, kernel);
        if (d < bound) {
          bsf.UpdateMin(d);
          std::lock_guard<std::mutex> lock(best_mu);
          if (Improves({i, d}, best)) best = {i, d};
        } else {
          ++local_abandoned;
        }
      }
    }
    abandoned.fetch_add(local_abandoned, std::memory_order_relaxed);
  });

  if (stats != nullptr) {
    stats->distance_calcs += dataset.count();
    stats->abandoned += abandoned.load();
    stats->seconds += timer.ElapsedSeconds();
  }
  return best;
}

std::vector<Neighbor> UcrKnnParallel(const Dataset& dataset,
                                     SeriesView query, size_t k,
                                     Executor* exec, ScanStats* stats,
                                     KernelPolicy kernel) {
  WallTimer timer;
  KnnHeap heap(k);
  std::atomic<uint64_t> abandoned{0};

  constexpr size_t kGrain = 256;
  WorkCounter counter(dataset.count());
  exec->Run([&](int) {
    uint64_t local_abandoned = 0;
    size_t begin, end;
    while (counter.NextBatch(kGrain, &begin, &end)) {
      for (SeriesId i = begin; i < end; ++i) {
        const float bound = heap.Bound();
        const float d = SquaredEuclideanEarlyAbandon(query, dataset.series(i),
                                                     bound, kernel);
        if (d < bound) {
          heap.Update({i, d});
        } else {
          ++local_abandoned;
        }
      }
    }
    abandoned.fetch_add(local_abandoned, std::memory_order_relaxed);
  });

  if (stats != nullptr) {
    stats->distance_calcs += dataset.count();
    stats->abandoned += abandoned.load();
    stats->seconds += timer.ElapsedSeconds();
  }
  return heap.Sorted();
}

Result<Neighbor> UcrScanDisk(const std::string& dataset_path,
                             DiskProfile profile, SeriesView query,
                             size_t batch_series, ScanStats* stats,
                             KernelPolicy kernel) {
  WallTimer timer;
  std::unique_ptr<BufferedSeriesReader> reader;
  PARISAX_ASSIGN_OR_RETURN(
      reader, BufferedSeriesReader::Open(dataset_path, profile, batch_series));
  if (reader->info().length != query.size()) {
    return Status::InvalidArgument("query length does not match the file");
  }
  Neighbor best{0, kInf};
  uint64_t total = 0, abandoned = 0;
  for (;;) {
    SeriesBatch batch;
    PARISAX_RETURN_IF_ERROR(reader->NextBatch(&batch));
    if (batch.empty()) break;
    for (size_t i = 0; i < batch.count; ++i) {
      const float d = SquaredEuclideanEarlyAbandon(query, batch.series(i),
                                                   best.distance_sq, kernel);
      if (d < best.distance_sq) {
        best = {batch.first_id + i, d};
      } else {
        ++abandoned;
      }
      ++total;
    }
  }
  if (stats != nullptr) {
    stats->distance_calcs += total;
    stats->abandoned += abandoned;
    stats->seconds += timer.ElapsedSeconds();
  }
  return best;
}

Neighbor BruteForceDtwNn(const Dataset& dataset, SeriesView query,
                         size_t band) {
  Neighbor best{0, kInf};
  for (SeriesId i = 0; i < dataset.count(); ++i) {
    const float d = DtwBand(query, dataset.series(i), band, kInf);
    if (Improves({i, d}, best)) best = {i, d};
  }
  return best;
}

Neighbor DtwScanSerial(const Dataset& dataset, SeriesView query, size_t band,
                       ScanStats* stats) {
  WallTimer timer;
  std::vector<Value> lower, upper;
  ComputeEnvelope(query, band, &lower, &upper);

  Neighbor best{0, kInf};
  uint64_t dtw_calcs = 0, abandoned = 0;
  for (SeriesId i = 0; i < dataset.count(); ++i) {
    const float lb = LbKeoghSq(lower, upper, dataset.series(i),
                               best.distance_sq);
    if (lb >= best.distance_sq) {
      ++abandoned;
      continue;
    }
    const float d = DtwBand(query, dataset.series(i), band, best.distance_sq);
    ++dtw_calcs;
    if (d < best.distance_sq) best = {i, d};
  }
  if (stats != nullptr) {
    stats->distance_calcs += dtw_calcs;
    stats->abandoned += abandoned;
    stats->seconds += timer.ElapsedSeconds();
  }
  return best;
}

Neighbor DtwScanParallel(const Dataset& dataset, SeriesView query,
                         size_t band, Executor* exec, ScanStats* stats) {
  WallTimer timer;
  std::vector<Value> lower, upper;
  ComputeEnvelope(query, band, &lower, &upper);

  AtomicMinFloat bsf(kInf);
  std::mutex best_mu;
  Neighbor best{0, kInf};
  std::atomic<uint64_t> dtw_calcs{0}, abandoned{0};

  constexpr size_t kGrain = 128;
  WorkCounter counter(dataset.count());
  exec->Run([&](int) {
    uint64_t local_calcs = 0, local_abandoned = 0;
    size_t begin, end;
    while (counter.NextBatch(kGrain, &begin, &end)) {
      for (SeriesId i = begin; i < end; ++i) {
        const float bound = bsf.Load();
        const float lb = LbKeoghSq(lower, upper, dataset.series(i), bound);
        if (lb >= bound) {
          ++local_abandoned;
          continue;
        }
        const float d = DtwBand(query, dataset.series(i), band, bound);
        ++local_calcs;
        if (d < bound) {
          bsf.UpdateMin(d);
          std::lock_guard<std::mutex> lock(best_mu);
          if (Improves({i, d}, best)) best = {i, d};
        }
      }
    }
    dtw_calcs.fetch_add(local_calcs, std::memory_order_relaxed);
    abandoned.fetch_add(local_abandoned, std::memory_order_relaxed);
  });

  if (stats != nullptr) {
    stats->distance_calcs += dtw_calcs.load();
    stats->abandoned += abandoned.load();
    stats->seconds += timer.ElapsedSeconds();
  }
  return best;
}

}  // namespace parisax
