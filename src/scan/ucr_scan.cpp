#include "scan/ucr_scan.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "dist/dtw.h"
#include "index/knn_heap.h"
#include "util/mutex.h"
#include "util/timer.h"

namespace parisax {

namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();

bool Improves(const Neighbor& candidate, const Neighbor& best) {
  return candidate.distance_sq < best.distance_sq ||
         (candidate.distance_sq == best.distance_sq &&
          candidate.id < best.id);
}

/// The in-memory scans iterate a RawDataView over the source's
/// contiguous block. Addressability is a documented precondition (the
/// Engine facade gates it through the capability table); a violating
/// source asserts in debug builds and scans as empty in release builds
/// (count 0), never dereferencing the null block.
struct ScanView {
  RawDataView raw;
  size_t count = 0;
};

ScanView ViewOf(const RawSeriesSource& source) {
  assert(source.addressable() &&
         "in-memory scan requires an addressable source");
  if (!source.addressable()) return {};
  return {RawDataView{source.ContiguousData(), source.length()},
          source.count()};
}

}  // namespace

Neighbor BruteForceNn(const RawSeriesSource& source, SeriesView query,
                      KernelPolicy kernel) {
  const ScanView view = ViewOf(source);
  const RawDataView raw = view.raw;
  Neighbor best{0, kInf};
  for (SeriesId i = 0; i < view.count; ++i) {
    const float d = SquaredEuclidean(query, raw.series(i), kernel);
    if (Improves({i, d}, best)) best = {i, d};
  }
  return best;
}

std::vector<Neighbor> BruteForceKnn(const RawSeriesSource& source,
                                    SeriesView query, size_t k,
                                    KernelPolicy kernel) {
  const ScanView view = ViewOf(source);
  const RawDataView raw = view.raw;
  std::vector<Neighbor> all;
  all.reserve(view.count);
  for (SeriesId i = 0; i < view.count; ++i) {
    all.push_back({i, SquaredEuclidean(query, raw.series(i), kernel)});
  }
  const size_t take = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + take, all.end(),
                    [](const Neighbor& a, const Neighbor& b) {
                      return a.distance_sq < b.distance_sq ||
                             (a.distance_sq == b.distance_sq && a.id < b.id);
                    });
  all.resize(take);
  return all;
}

Neighbor UcrScanSerial(const RawSeriesSource& source, SeriesView query,
                       ScanStats* stats, KernelPolicy kernel) {
  WallTimer timer;
  const ScanView view = ViewOf(source);
  const RawDataView raw = view.raw;
  Neighbor best{0, kInf};
  uint64_t abandoned = 0;
  for (SeriesId i = 0; i < view.count; ++i) {
    const float d = SquaredEuclideanEarlyAbandon(query, raw.series(i),
                                                 best.distance_sq, kernel);
    if (d < best.distance_sq) {
      best = {i, d};
    } else {
      ++abandoned;
    }
  }
  if (stats != nullptr) {
    stats->distance_calcs += view.count;
    stats->abandoned += abandoned;
    stats->seconds += timer.ElapsedSeconds();
  }
  return best;
}

Neighbor UcrScanParallel(const RawSeriesSource& source, SeriesView query,
                         Executor* exec, ScanStats* stats,
                         KernelPolicy kernel) {
  WallTimer timer;
  const ScanView view = ViewOf(source);
  const RawDataView raw = view.raw;
  AtomicMinFloat bsf(kInf);
  Mutex best_mu{"best_mu", LockRank::kResultMerge};
  Neighbor best{0, kInf};
  std::atomic<uint64_t> abandoned{0};

  constexpr size_t kGrain = 256;
  WorkCounter counter(view.count);
  exec->Run([&](int) {
    uint64_t local_abandoned = 0;
    size_t begin, end;
    while (counter.NextBatch(kGrain, &begin, &end)) {
      for (SeriesId i = begin; i < end; ++i) {
        const float bound = bsf.Load();
        const float d = SquaredEuclideanEarlyAbandon(query, raw.series(i),
                                                     bound, kernel);
        if (d < bound) {
          bsf.UpdateMin(d);
          MutexLock lock(&best_mu);
          if (Improves({i, d}, best)) best = {i, d};
        } else {
          ++local_abandoned;
        }
      }
    }
    abandoned.fetch_add(local_abandoned, std::memory_order_relaxed);
  });

  if (stats != nullptr) {
    stats->distance_calcs += view.count;
    stats->abandoned += abandoned.load();
    stats->seconds += timer.ElapsedSeconds();
  }
  return best;
}

std::vector<Neighbor> UcrKnnParallel(const RawSeriesSource& source,
                                     SeriesView query, size_t k,
                                     Executor* exec, ScanStats* stats,
                                     KernelPolicy kernel) {
  WallTimer timer;
  const ScanView view = ViewOf(source);
  const RawDataView raw = view.raw;
  KnnHeap heap(k);
  std::atomic<uint64_t> abandoned{0};

  constexpr size_t kGrain = 256;
  WorkCounter counter(view.count);
  exec->Run([&](int) {
    uint64_t local_abandoned = 0;
    size_t begin, end;
    while (counter.NextBatch(kGrain, &begin, &end)) {
      for (SeriesId i = begin; i < end; ++i) {
        const float bound = heap.Bound();
        const float d = SquaredEuclideanEarlyAbandon(query, raw.series(i),
                                                     bound, kernel);
        if (d < bound) {
          heap.Update({i, d});
        } else {
          ++local_abandoned;
        }
      }
    }
    abandoned.fetch_add(local_abandoned, std::memory_order_relaxed);
  });

  if (stats != nullptr) {
    stats->distance_calcs += view.count;
    stats->abandoned += abandoned.load();
    stats->seconds += timer.ElapsedSeconds();
  }
  return heap.Sorted();
}

Result<Neighbor> UcrScanStream(const RawSeriesSource& source,
                               SeriesView query, size_t batch_series,
                               ScanStats* stats, KernelPolicy kernel) {
  WallTimer timer;
  if (source.length() != query.size()) {
    return Status::InvalidArgument("query length does not match the source");
  }
  std::unique_ptr<SeriesStream> stream;
  PARISAX_ASSIGN_OR_RETURN(stream, source.OpenStream(batch_series));
  Neighbor best{0, kInf};
  uint64_t total = 0, abandoned = 0;
  for (;;) {
    SeriesBatch batch;
    PARISAX_RETURN_IF_ERROR(stream->NextBatch(&batch));
    if (batch.empty()) break;
    for (size_t i = 0; i < batch.count; ++i) {
      const float d = SquaredEuclideanEarlyAbandon(query, batch.series(i),
                                                   best.distance_sq, kernel);
      if (d < best.distance_sq) {
        best = {batch.first_id + i, d};
      } else {
        ++abandoned;
      }
      ++total;
    }
  }
  if (stats != nullptr) {
    stats->distance_calcs += total;
    stats->abandoned += abandoned;
    stats->seconds += timer.ElapsedSeconds();
  }
  return best;
}

Neighbor BruteForceDtwNn(const RawSeriesSource& source, SeriesView query,
                         size_t band) {
  const ScanView view = ViewOf(source);
  const RawDataView raw = view.raw;
  Neighbor best{0, kInf};
  for (SeriesId i = 0; i < view.count; ++i) {
    const float d = DtwBand(query, raw.series(i), band, kInf);
    if (Improves({i, d}, best)) best = {i, d};
  }
  return best;
}

Neighbor DtwScanSerial(const RawSeriesSource& source, SeriesView query,
                       size_t band, ScanStats* stats) {
  WallTimer timer;
  const ScanView view = ViewOf(source);
  const RawDataView raw = view.raw;
  std::vector<Value> lower, upper;
  ComputeEnvelope(query, band, &lower, &upper);

  Neighbor best{0, kInf};
  uint64_t dtw_calcs = 0, abandoned = 0;
  for (SeriesId i = 0; i < view.count; ++i) {
    const float lb = LbKeoghSq(lower, upper, raw.series(i),
                               best.distance_sq);
    if (lb >= best.distance_sq) {
      ++abandoned;
      continue;
    }
    const float d = DtwBand(query, raw.series(i), band, best.distance_sq);
    ++dtw_calcs;
    if (d < best.distance_sq) best = {i, d};
  }
  if (stats != nullptr) {
    stats->distance_calcs += dtw_calcs;
    stats->abandoned += abandoned;
    stats->seconds += timer.ElapsedSeconds();
  }
  return best;
}

Neighbor DtwScanParallel(const RawSeriesSource& source, SeriesView query,
                         size_t band, Executor* exec, ScanStats* stats) {
  WallTimer timer;
  const ScanView view = ViewOf(source);
  const RawDataView raw = view.raw;
  std::vector<Value> lower, upper;
  ComputeEnvelope(query, band, &lower, &upper);

  AtomicMinFloat bsf(kInf);
  Mutex best_mu{"best_mu", LockRank::kResultMerge};
  Neighbor best{0, kInf};
  std::atomic<uint64_t> dtw_calcs{0}, abandoned{0};

  constexpr size_t kGrain = 128;
  WorkCounter counter(view.count);
  exec->Run([&](int) {
    uint64_t local_calcs = 0, local_abandoned = 0;
    size_t begin, end;
    while (counter.NextBatch(kGrain, &begin, &end)) {
      for (SeriesId i = begin; i < end; ++i) {
        const float bound = bsf.Load();
        const float lb = LbKeoghSq(lower, upper, raw.series(i), bound);
        if (lb >= bound) {
          ++local_abandoned;
          continue;
        }
        const float d = DtwBand(query, raw.series(i), band, bound);
        ++local_calcs;
        if (d < bound) {
          bsf.UpdateMin(d);
          MutexLock lock(&best_mu);
          if (Improves({i, d}, best)) best = {i, d};
        }
      }
    }
    dtw_calcs.fetch_add(local_calcs, std::memory_order_relaxed);
    abandoned.fetch_add(local_abandoned, std::memory_order_relaxed);
  });

  if (stats != nullptr) {
    stats->distance_calcs += dtw_calcs.load();
    stats->abandoned += abandoned.load();
    stats->seconds += timer.ElapsedSeconds();
  }
  return best;
}

}  // namespace parisax
