// Sequential-scan similarity search: the brute-force reference and the
// UCR Suite baselines of the paper.
//
// "UCR Suite" here is the whole-matching variant relevant to the paper's
// experiments: an optimized serial scan with early-abandoning SIMD ED.
// "UCR Suite-p" (the paper's in-memory competitor for MESSI, Figs. 9/12)
// partitions the collection over threads that share an atomic BSF.
#ifndef PARISAX_SCAN_UCR_SCAN_H_
#define PARISAX_SCAN_UCR_SCAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "dist/euclidean.h"
#include "io/dataset.h"
#include "io/sim_disk.h"
#include "util/status.h"
#include "util/threading.h"

namespace parisax {

struct ScanStats {
  uint64_t distance_calcs = 0;
  uint64_t abandoned = 0;  ///< distance computations cut short
  double seconds = 0.0;
};

/// Exact 1-NN by full (non-abandoning) scan. The correctness oracle for
/// every other engine. Ties broken toward the smaller id.
Neighbor BruteForceNn(const Dataset& dataset, SeriesView query,
                      KernelPolicy kernel = KernelPolicy::kAuto);

/// Exact k-NN by full scan, ascending distance (ties: smaller id first).
std::vector<Neighbor> BruteForceKnn(const Dataset& dataset, SeriesView query,
                                    size_t k,
                                    KernelPolicy kernel = KernelPolicy::kAuto);

/// UCR Suite: serial scan with early-abandoning ED.
Neighbor UcrScanSerial(const Dataset& dataset, SeriesView query,
                       ScanStats* stats = nullptr,
                       KernelPolicy kernel = KernelPolicy::kAuto);

/// UCR Suite-p: parallel partitioned scan with a shared atomic BSF.
/// `exec` supplies the scan's parallelism (a ThreadPool for one query
/// over every core, an InlineExecutor to confine it to the caller).
Neighbor UcrScanParallel(const Dataset& dataset, SeriesView query,
                         Executor* exec, ScanStats* stats = nullptr,
                         KernelPolicy kernel = KernelPolicy::kAuto);

/// Parallel exact k-NN scan: the BSF generalizes to the k-th best
/// distance (see index/knn_heap.h). Ascending (distance, id).
std::vector<Neighbor> UcrKnnParallel(const Dataset& dataset,
                                     SeriesView query, size_t k,
                                     Executor* exec,
                                     ScanStats* stats = nullptr,
                                     KernelPolicy kernel =
                                         KernelPolicy::kAuto);

/// UCR Suite over an on-disk collection: streams the file through the
/// simulated device in `batch_series` chunks (serial; the paper's on-disk
/// UCR baseline for Figs. 10/11).
Result<Neighbor> UcrScanDisk(const std::string& dataset_path,
                             DiskProfile profile, SeriesView query,
                             size_t batch_series = 8192,
                             ScanStats* stats = nullptr,
                             KernelPolicy kernel = KernelPolicy::kAuto);

// --- DTW variants (the paper's "current work" extension) ---------------

/// Exact DTW 1-NN by full banded DTW (no lower bounding); test oracle.
Neighbor BruteForceDtwNn(const Dataset& dataset, SeriesView query,
                         size_t band);

/// UCR-DTW: serial scan with the LB_Keogh cascade and early-abandoning
/// banded DTW.
Neighbor DtwScanSerial(const Dataset& dataset, SeriesView query, size_t band,
                       ScanStats* stats = nullptr);

/// Parallel UCR-DTW with a shared atomic BSF.
Neighbor DtwScanParallel(const Dataset& dataset, SeriesView query,
                         size_t band, Executor* exec,
                         ScanStats* stats = nullptr);

}  // namespace parisax

#endif  // PARISAX_SCAN_UCR_SCAN_H_
