// Sequential-scan similarity search: the brute-force reference and the
// UCR Suite baselines of the paper.
//
// "UCR Suite" here is the whole-matching variant relevant to the paper's
// experiments: an optimized serial scan with early-abandoning SIMD ED.
// "UCR Suite-p" (the paper's in-memory competitor for MESSI, Figs. 9/12)
// partitions the collection over threads that share an atomic BSF.
//
// Every scan consumes the RawSeriesSource data plane. The in-memory
// variants require an *addressable* source (in-RAM or mmap — they scan a
// RawDataView over its contiguous block); a non-addressable source
// asserts in debug builds and yields the empty-collection result in
// release builds. UcrScanStream streams any source batch-by-batch and
// is the on-disk baseline (Figs. 10/11).
#ifndef PARISAX_SCAN_UCR_SCAN_H_
#define PARISAX_SCAN_UCR_SCAN_H_

#include <cstdint>
#include <vector>

#include "dist/euclidean.h"
#include "index/raw_source.h"
#include "util/status.h"
#include "util/threading.h"

namespace parisax {

struct ScanStats {
  uint64_t distance_calcs = 0;
  uint64_t abandoned = 0;  ///< distance computations cut short
  double seconds = 0.0;
};

/// Exact 1-NN by full (non-abandoning) scan. The correctness oracle for
/// every other engine. Ties broken toward the smaller id. Requires an
/// addressable source.
Neighbor BruteForceNn(const RawSeriesSource& source, SeriesView query,
                      KernelPolicy kernel = KernelPolicy::kAuto);

/// Exact k-NN by full scan, ascending distance (ties: smaller id first).
/// Requires an addressable source.
std::vector<Neighbor> BruteForceKnn(const RawSeriesSource& source,
                                    SeriesView query, size_t k,
                                    KernelPolicy kernel = KernelPolicy::kAuto);

/// UCR Suite: serial scan with early-abandoning ED. Requires an
/// addressable source.
Neighbor UcrScanSerial(const RawSeriesSource& source, SeriesView query,
                       ScanStats* stats = nullptr,
                       KernelPolicy kernel = KernelPolicy::kAuto);

/// UCR Suite-p: parallel partitioned scan with a shared atomic BSF.
/// `exec` supplies the scan's parallelism (a ThreadPool for one query
/// over every core, an InlineExecutor to confine it to the caller).
/// Requires an addressable source.
Neighbor UcrScanParallel(const RawSeriesSource& source, SeriesView query,
                         Executor* exec, ScanStats* stats = nullptr,
                         KernelPolicy kernel = KernelPolicy::kAuto);

/// Parallel exact k-NN scan: the BSF generalizes to the k-th best
/// distance (see index/knn_heap.h). Ascending (distance, id). Requires an
/// addressable source.
std::vector<Neighbor> UcrKnnParallel(const RawSeriesSource& source,
                                     SeriesView query, size_t k,
                                     Executor* exec,
                                     ScanStats* stats = nullptr,
                                     KernelPolicy kernel =
                                         KernelPolicy::kAuto);

/// UCR Suite over a streamed collection: one sequential pass through
/// source.OpenStream in `batch_series` chunks (serial; with a FileSource
/// this is the paper's on-disk UCR baseline, paying the device model's
/// sequential cost).
Result<Neighbor> UcrScanStream(const RawSeriesSource& source,
                               SeriesView query, size_t batch_series = 8192,
                               ScanStats* stats = nullptr,
                               KernelPolicy kernel = KernelPolicy::kAuto);

// --- DTW variants (the paper's "current work" extension) ---------------
// All require an addressable source.

/// Exact DTW 1-NN by full banded DTW (no lower bounding); test oracle.
Neighbor BruteForceDtwNn(const RawSeriesSource& source, SeriesView query,
                         size_t band);

/// UCR-DTW: serial scan with the LB_Keogh cascade and early-abandoning
/// banded DTW.
Neighbor DtwScanSerial(const RawSeriesSource& source, SeriesView query,
                       size_t band, ScanStats* stats = nullptr);

/// Parallel UCR-DTW with a shared atomic BSF.
Neighbor DtwScanParallel(const RawSeriesSource& source, SeriesView query,
                         size_t band, Executor* exec,
                         ScanStats* stats = nullptr);

}  // namespace parisax

#endif  // PARISAX_SCAN_UCR_SCAN_H_
