// Anomaly detection over a seismic-like collection -- the paper's intro
// motivates data series similarity search precisely with this workload
// ("users need to query and analyze them (e.g., detect anomalies)").
//
// Method (discord-style): every monitored window is queried against a
// reference collection of normal activity; windows whose exact 1-NN
// distance is unusually large have no close precedent and are flagged.
//
//   ./anomaly_detection [reference_series] [monitored_windows]
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "dist/znorm.h"
#include "io/generator.h"
#include "util/rng.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace parisax;

  const size_t reference_count =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 40000;
  const size_t monitored_count =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 64;
  const size_t length = 256;

  std::cout << "reference collection: " << reference_count
            << " seismic-like series\n";
  GeneratorOptions gen;
  gen.kind = DatasetKind::kSeismicBurst;
  gen.count = reference_count;
  gen.length = length;
  gen.seed = 77;
  Dataset reference = GenerateDataset(gen);

  EngineOptions options;
  options.algorithm = Algorithm::kMessi;
  options.num_threads = 4;
  options.tree.segments = 8;
  // The engine adopts the reference collection and owns it from here on.
  auto engine =
      Engine::Build(SourceSpec::InMemory(std::move(reference)), options);
  if (!engine.ok()) {
    std::cerr << engine.status().ToString() << "\n";
    return 1;
  }

  // Monitored stream: mostly normal windows (perturbed reference
  // members), with a few injected anomalies: sustained high-frequency
  // ringing (a failing sensor), far above the 8-40 cycle band of normal
  // seismic events.
  Dataset monitored = GeneratePerturbedQueries(
      DatasetKind::kSeismicBurst, monitored_count, length, gen.seed,
      reference_count, 0.2);
  Rng rng(123);
  std::vector<size_t> injected;
  for (int a = 0; a < 4; ++a) {
    const size_t w = rng.NextBelow(monitored_count);
    MutableSeriesView series = monitored.mutable_series(w);
    const size_t start = rng.NextBelow(length / 4);
    const double freq = rng.NextDouble(60.0, 120.0);
    for (size_t i = start; i < start + length / 2; ++i) {
      series[i] = static_cast<float>(
          2.0 * std::sin(6.2831853 * freq * static_cast<double>(i) /
                         static_cast<double>(length)));
    }
    ZNormalize(series);
    injected.push_back(w);
  }
  std::sort(injected.begin(), injected.end());
  injected.erase(std::unique(injected.begin(), injected.end()),
                 injected.end());

  // Score every monitored window by its exact 1-NN distance.
  struct Scored {
    size_t window;
    float nn_distance;
  };
  std::vector<Scored> scores;
  WallTimer timer;
  for (SeriesId w = 0; w < monitored.count(); ++w) {
    auto response = (*engine)->Search(monitored.series(w), {});
    if (!response.ok()) {
      std::cerr << response.status().ToString() << "\n";
      return 1;
    }
    scores.push_back(
        {w, std::sqrt(response->neighbors[0].distance_sq)});
  }
  std::cout << "scored " << monitored.count() << " windows in "
            << timer.ElapsedSeconds() << "s ("
            << timer.ElapsedSeconds() * 1e3 / monitored.count()
            << " ms/window)\n\n";

  std::sort(scores.begin(), scores.end(),
            [](const Scored& a, const Scored& b) {
              return a.nn_distance > b.nn_distance;
            });

  std::cout << "top anomalies by 1-NN distance (injected dropouts: ";
  for (const size_t w : injected) std::cout << w << " ";
  std::cout << "):\n";
  size_t hits = 0;
  for (size_t i = 0; i < injected.size() + 2 && i < scores.size(); ++i) {
    const bool was_injected =
        std::binary_search(injected.begin(), injected.end(),
                           scores[i].window);
    hits += was_injected && i < injected.size();
    std::cout << "  window " << scores[i].window << "  nn-distance "
              << scores[i].nn_distance
              << (was_injected ? "   <-- injected anomaly" : "") << "\n";
  }
  std::cout << "\n" << hits << "/" << injected.size()
            << " injected anomalies ranked in the top-" << injected.size()
            << ".\n";
  return hits == injected.size() ? 0 : 1;
}
