// DTW similarity search through an unchanged iSAX index -- the paper's
// "current work" extension: "we can index a dataset once, and then use
// this index to answer both Euclidean and DTW similarity search queries."
//
// The demo indexes an EEG-like collection once, then queries with a
// *time-shifted* copy of a known series. Euclidean distance is fooled by
// the phase shift; DTW warps over it and recovers the source series.
//
//   ./dtw_search [series]
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "core/engine.h"
#include "dist/znorm.h"
#include "io/generator.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace parisax;

  const size_t count = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                : 30000;
  const size_t length = 128;
  const size_t shift = 5;

  std::cout << "indexing " << count << " EEG-like series (once)...\n";
  GeneratorOptions gen;
  gen.kind = DatasetKind::kSaldEeg;
  gen.count = count;
  gen.length = length;
  gen.seed = 99;
  const Dataset dataset = GenerateDataset(gen);

  EngineOptions options;
  options.algorithm = Algorithm::kMessi;
  options.num_threads = 4;
  options.tree.segments = 8;
  // Borrow the dataset (we keep using it below to craft the query);
  // `dataset` must outlive the engine.
  auto engine = Engine::Build(SourceSpec::Borrowed(&dataset), options);
  if (!engine.ok()) {
    std::cerr << engine.status().ToString() << "\n";
    return 1;
  }

  // Query: series 4242 shifted right by `shift` points (the first points
  // are regenerated context), then z-normalized again.
  const SeriesId source = 4242;
  Dataset query_holder(1, length);
  MutableSeriesView query = query_holder.mutable_series(0);
  const SeriesView original = dataset.series(source);
  for (size_t i = 0; i < length; ++i) {
    query[i] = original[i >= shift ? i - shift : 0];
  }
  ZNormalize(query);

  std::cout << "query = series " << source << " shifted by " << shift
            << " points\n\n";

  // Euclidean search.
  auto ed = (*engine)->Search(query, {});
  if (!ed.ok()) {
    std::cerr << ed.status().ToString() << "\n";
    return 1;
  }
  std::cout << "Euclidean 1-NN: series " << ed->neighbors[0].id
            << "  distance " << std::sqrt(ed->neighbors[0].distance_sq)
            << (ed->neighbors[0].id == source ? "  (the source)"
                                              : "  (NOT the source)")
            << "\n";

  // DTW search on the same, unchanged index, for growing warping bands.
  bool dtw_found = false;
  for (const size_t band : {2ul, 5ul, 10ul}) {
    SearchRequest request;
    request.dtw = true;
    request.dtw_band = band;
    WallTimer timer;
    auto dtw = (*engine)->Search(query, request);
    if (!dtw.ok()) {
      std::cerr << dtw.status().ToString() << "\n";
      return 1;
    }
    const bool found = dtw->neighbors[0].id == source;
    dtw_found |= band >= shift && found;
    std::cout << "DTW 1-NN (band " << band << "): series "
              << dtw->neighbors[0].id << "  cost "
              << std::sqrt(dtw->neighbors[0].distance_sq) << "  ["
              << timer.ElapsedSeconds() * 1e3 << " ms, "
              << dtw->stats.real_dist_calcs << " full DTW computations]"
              << (found ? "  (the source)" : "") << "\n";
  }

  std::cout << "\nwith a band >= the shift, DTW recovers the source series "
            << (dtw_found ? "(it did)" : "(it did NOT -- unexpected)")
            << ", while the index structure never changed.\n";
  return dtw_found ? 0 : 1;
}
