// Interactive exploration of an on-disk collection with ParIS+ -- the
// scenario the paper's abstract promises: "our on-disk solution can
// answer exact similarity search queries on 100GB datasets in a few
// seconds", enabling exploratory sequences where "every next query
// depends on the results of previous queries".
//
// The demo writes a dataset file, builds a ParIS+ index over a simulated
// SSD, and then runs an exploration session: an approximate probe first
// (milliseconds), then the exact query, then a drill-down query derived
// from the previous answer.
//
//   ./ondisk_exploration [series] [dir]
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "core/engine.h"
#include "io/format.h"
#include "io/generator.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace parisax;

  const size_t count = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                : 60000;
  const std::string dir = argc > 2 ? argv[2] : "/tmp";
  const size_t length = 256;
  const std::string path = dir + "/parisax_exploration.psax";

  std::cout << "writing " << count << " random-walk series to " << path
            << " ...\n";
  GeneratorOptions gen;
  gen.count = count;
  gen.length = length;
  gen.seed = 1234;
  const Dataset dataset = GenerateDataset(gen);
  if (Status st = WriteDataset(dataset, path); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }

  // Build ParIS+ over the file; raw data stays on the simulated SSD.
  EngineOptions options;
  options.algorithm = Algorithm::kParisPlus;
  options.num_threads = 4;
  options.tree.segments = 8;
  options.build_profile = DiskProfile::Ssd();
  options.query_profile = DiskProfile::Ssd();
  WallTimer build_timer;
  auto engine = Engine::Build(SourceSpec::File(path), options);
  if (!engine.ok()) {
    std::cerr << engine.status().ToString() << "\n";
    return 1;
  }
  std::cout << "ParIS+ index built in " << build_timer.ElapsedSeconds()
            << "s (" << (*engine)->build_report().details << ")\n\n";

  const Dataset queries =
      GenerateQueries(DatasetKind::kRandomWalk, 1, length, gen.seed);
  SeriesView query = queries.series(0);

  std::cout << "-- exploration session --\n";
  // Step 1: cheap approximate probe.
  SearchRequest approx;
  approx.approximate = true;
  WallTimer t1;
  auto probe = (*engine)->Search(query, approx);
  if (!probe.ok()) {
    std::cerr << probe.status().ToString() << "\n";
    return 1;
  }
  std::cout << "1) approximate probe: series " << probe->neighbors[0].id
            << " at distance "
            << std::sqrt(probe->neighbors[0].distance_sq) << "  ["
            << t1.ElapsedSeconds() * 1e3 << " ms]\n";

  // Step 2: exact answer.
  WallTimer t2;
  auto exact = (*engine)->Search(query, {});
  if (!exact.ok()) {
    std::cerr << exact.status().ToString() << "\n";
    return 1;
  }
  const SeriesId found = exact->neighbors[0].id;
  std::cout << "2) exact 1-NN: series " << found << " at distance "
            << std::sqrt(exact->neighbors[0].distance_sq) << "  ["
            << t2.ElapsedSeconds() * 1e3 << " ms, "
            << exact->stats.candidates << " of " << count
            << " series survived pruning]\n";

  // Step 3: drill down -- query with the series we just found. Its exact
  // 1-NN must be itself at distance 0: an end-to-end exactness check that
  // doubles as the "next query depends on the previous answer" step.
  WallTimer t3;
  auto drill = (*engine)->Search(dataset.series(found), {});
  if (!drill.ok()) {
    std::cerr << drill.status().ToString() << "\n";
    return 1;
  }
  const bool exact_self = drill->neighbors[0].id == found &&
                          drill->neighbors[0].distance_sq == 0.0f;
  std::cout << "3) drill-down with series " << found
            << " itself: 1-NN is series " << drill->neighbors[0].id
            << " at distance "
            << std::sqrt(drill->neighbors[0].distance_sq) << "  ["
            << t3.ElapsedSeconds() * 1e3 << " ms]"
            << (exact_self ? "  (found itself -- exactness confirmed)"
                           : "  (UNEXPECTED)")
            << "\n";
  if (!exact_self) return 1;

  std::cout << "\neach step is fast enough to keep a human in the loop -- "
               "the interactivity claim the paper makes.\n";
  std::remove(path.c_str());
  std::remove((path + ".leaves").c_str());
  return 0;
}
