// Quickstart: build a MESSI index over a synthetic collection and answer
// exact 1-NN and k-NN queries through the public Engine API.
//
//   ./quickstart [series] [length]
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <utility>

#include "core/engine.h"
#include "io/generator.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace parisax;

  const size_t series = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                 : 50000;
  const size_t length = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                 : 256;

  std::cout << "parisax quickstart\n"
            << "generating " << series << " z-normalized random-walk series"
            << " of " << length << " points...\n";
  GeneratorOptions gen;
  gen.kind = DatasetKind::kRandomWalk;
  gen.count = series;
  gen.length = length;
  gen.seed = 2020;
  Dataset dataset = GenerateDataset(gen);

  // Build the in-memory MESSI index. The engine adopts the dataset
  // (SourceSpec::InMemory), so no lifetime management is needed.
  EngineOptions options;
  options.algorithm = Algorithm::kMessi;
  options.num_threads = 4;
  options.tree.segments = 8;
  options.tree.leaf_capacity = 128;

  WallTimer build_timer;
  auto engine =
      Engine::Build(SourceSpec::InMemory(std::move(dataset)), options);
  if (!engine.ok()) {
    std::cerr << "build failed: " << engine.status().ToString() << "\n";
    return 1;
  }
  std::cout << "built MESSI index in " << build_timer.ElapsedSeconds()
            << "s (" << (*engine)->build_report().tree.leaves
            << " leaves, " << (*engine)->build_report().details << ")\n\n";

  // Answer a few exact nearest-neighbor queries.
  const Dataset queries =
      GenerateQueries(DatasetKind::kRandomWalk, 5, length, gen.seed);
  for (SeriesId q = 0; q < queries.count(); ++q) {
    WallTimer query_timer;
    auto response = (*engine)->Search(queries.series(q), {});
    if (!response.ok()) {
      std::cerr << "query failed: " << response.status().ToString() << "\n";
      return 1;
    }
    const Neighbor& nn = response->neighbors[0];
    std::cout << "query " << q << ": exact 1-NN is series " << nn.id
              << " at distance " << std::sqrt(nn.distance_sq) << " ("
              << query_timer.ElapsedSeconds() * 1e3 << " ms, "
              << response->stats.real_dist_calcs
              << " real distance computations out of " << series
              << " series)\n";
  }

  // And one 5-NN query.
  SearchRequest knn;
  knn.k = 5;
  auto response = (*engine)->Search(queries.series(0), knn);
  if (!response.ok()) {
    std::cerr << "kNN failed: " << response.status().ToString() << "\n";
    return 1;
  }
  std::cout << "\n5 nearest neighbors of query 0:\n";
  for (const Neighbor& n : response->neighbors) {
    std::cout << "  series " << n.id << "  distance "
              << std::sqrt(n.distance_sq) << "\n";
  }
  std::cout << "\ndone. Next steps: examples/anomaly_detection, "
               "examples/dtw_search, examples/ondisk_exploration.\n";
  return 0;
}
